"""Checkpoint metadata structures.

A checkpoint is a *delta*: the object records and page locators
modified since its parent.  The merged (restorable) view of an
application at checkpoint N is the newest-wins union of deltas along
the parent chain — walked by :meth:`ObjectStore.merged_view` at
restore time, exactly like reading a WAFL/ZFS snapshot through its
block-sharing ancestry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.runs import build_arith_runs, expand_arith_runs
from ..errors import CorruptRecord


class PageLocator:
    """Where one page's checkpointed content lives.

    Synthetic pages are ``("syn", seed)`` — their content is a pure
    function of the seed; the bytes were still charged to the device.
    Real pages are ``("ext", extent_offset, byte_offset, length)``
    inside a packed data extent.
    """

    __slots__ = ("kind", "seed", "extent", "byte_off", "length")

    def __init__(self, kind: str, seed: int = 0, extent: int = 0,
                 byte_off: int = 0, length: int = 0) -> None:
        self.kind = kind
        self.seed = seed
        self.extent = extent
        self.byte_off = byte_off
        self.length = length

    @classmethod
    def synthetic(cls, seed: int) -> "PageLocator":
        """Locator for a synthetic page (content = f(seed))."""
        return cls("syn", seed=seed)

    @classmethod
    def in_extent(cls, extent: int, byte_off: int, length: int) -> "PageLocator":
        """Locator for real bytes inside a packed data extent."""
        return cls("ext", extent=extent, byte_off=byte_off, length=length)

    def encode(self) -> list:
        """Wire form of the locator."""
        if self.kind == "syn":
            return ["syn", self.seed]
        return ["ext", self.extent, self.byte_off, self.length]

    @classmethod
    def decode(cls, raw: list) -> "PageLocator":
        """Parse a wire-form locator."""
        if not raw:
            raise CorruptRecord("empty page locator")
        if raw[0] == "syn":
            return cls.synthetic(raw[1])
        if raw[0] == "ext":
            return cls.in_extent(raw[1], raw[2], raw[3])
        raise CorruptRecord(f"bad locator kind {raw[0]!r}")


def encode_page_runs(page_map: Dict[int, "PageLocator"]) -> List[list]:
    """Run-compress a page-locator map for the metadata record.

    Adjacent pages whose locators follow an arithmetic pattern —
    synthetic seeds stepping by a constant, or consecutive slots of
    one packed extent — collapse into single run entries::

        ["syn", start_pindex, count, seed0, seed_step]
        ["ext", start_pindex, count, extent, byte_off0, page_len]

    so a million-page checkpoint's metadata document holds a handful
    of runs instead of a million per-page entries.
    """
    entries: List[list] = []
    for pindex in sorted(page_map):
        loc = page_map[pindex]
        last = entries[-1] if entries else None
        if loc.kind == "syn":
            if (last is not None and last[0] == "syn"
                    and last[1] + last[2] == pindex):
                if last[2] == 1:
                    # Second element pins the run's seed step.
                    last[4] = loc.seed - last[3]
                    last[2] = 2
                    continue
                if loc.seed == last[3] + last[4] * last[2]:
                    last[2] += 1
                    continue
            entries.append(["syn", pindex, 1, loc.seed, 0])
        else:
            if (last is not None and last[0] == "ext"
                    and last[1] + last[2] == pindex
                    and last[3] == loc.extent
                    and last[5] == loc.length
                    and last[4] + last[5] * last[2] == loc.byte_off):
                last[2] += 1
                continue
            entries.append(["ext", pindex, 1, loc.extent,
                            loc.byte_off, loc.length])
    return entries


def decode_page_runs(raw: List[list]) -> Dict[int, "PageLocator"]:
    """Expand run entries back to the per-page locator map.

    The in-memory representation stays per-page — every consumer
    (restore, GC, scrub, replication) is unchanged; only the wire
    format is columnar.
    """
    page_map: Dict[int, PageLocator] = {}
    for entry in raw:
        if not entry:
            raise CorruptRecord("empty page run entry")
        if entry[0] == "syn":
            _kind, start, count, seed0, step = entry
            for i in range(count):
                page_map[start + i] = PageLocator.synthetic(seed0 + step * i)
        elif entry[0] == "ext":
            _kind, start, count, extent, byte_off0, length = entry
            for i in range(count):
                page_map[start + i] = PageLocator.in_extent(
                    extent, byte_off0 + length * i, length)
        else:
            raise CorruptRecord(f"bad page run kind {entry[0]!r}")
    return page_map


class CheckpointInfo:
    """In-memory (and, encoded, on-disk) description of one checkpoint."""

    def __init__(self, ckpt_id: int, group_id: int, name: str = "",
                 parent: Optional[int] = None, time_ns: int = 0,
                 partial: bool = False) -> None:
        self.ckpt_id = ckpt_id
        self.group_id = group_id
        self.name = name
        self.parent = parent
        self.time_ns = time_ns
        #: Partial checkpoints (sls_memckpt) hold one region and are
        #: composed on top of a full checkpoint at restore (§7).
        self.partial = partial
        self.complete = False
        #: oid -> extent offset of the serialized object record.
        self.object_records: Dict[int, Tuple[int, int]] = {}
        #: oid -> {pindex -> PageLocator} for pages dirtied here.
        self.pages: Dict[int, Dict[int, PageLocator]] = {}
        #: Every extent this checkpoint's delta owns: (offset, length).
        self.owned_extents: List[Tuple[int, int]] = []
        #: Byte count of page data this checkpoint wrote.
        self.data_bytes = 0
        #: Extent of this checkpoint's own metadata record.
        self.meta_extent: Optional[Tuple[int, int]] = None
        #: Every OID the serializer *walked* at checkpoint time —
        #: distinguishes "unchanged" (live but not re-written here)
        #: from "deleted" (absent).  None for checkpoints made before
        #: liveness tracking and for partial (memckpt) deltas, which
        #: restores treat as "everything in the chain is live".
        self.live_oids: Optional[Set[int]] = None
        #: Records the serializer skipped as unchanged (telemetry).
        self.records_skipped = 0

    # -- on-disk encoding ---------------------------------------------------------

    def encode_meta(self) -> Dict[str, Any]:
        """The checkpoint's on-disk metadata document."""
        # OIDs are allocated from one cursor with the class tag in the
        # high bits, so each class's live OIDs form short arithmetic
        # progressions; the live set — easily the largest part of a
        # steady-state delta's metadata — compresses to a handful of
        # [start, count, step] runs.
        live_runs = None
        if self.live_oids is not None:
            live_runs = build_arith_runs(self.live_oids)
        return {
            "live_oid_runs": live_runs,
            "records_skipped": self.records_skipped,
            "ckpt_id": self.ckpt_id,
            "group_id": self.group_id,
            "name": self.name,
            "parent": self.parent,
            "time_ns": self.time_ns,
            "partial": self.partial,
            "object_records": {str(oid): [off, length]
                               for oid, (off, length)
                               in self.object_records.items()},
            "pages": {str(oid): encode_page_runs(page_map)
                      for oid, page_map in self.pages.items()},
            "owned_extents": [[off, length]
                              for off, length in self.owned_extents],
            "data_bytes": self.data_bytes,
        }

    @classmethod
    def decode_meta(cls, raw: dict) -> "CheckpointInfo":
        """Rebuild checkpoint metadata from its document."""
        info = cls(raw["ckpt_id"], raw["group_id"], raw["name"],
                   raw["parent"], raw["time_ns"], raw["partial"])
        info.object_records = {int(oid): (pair[0], pair[1])
                               for oid, pair in raw["object_records"].items()}
        # Current metadata stores pages as run lists; checkpoints
        # written before run compression used per-pindex dicts.
        info.pages = {
            int(oid): (decode_page_runs(page_map)
                       if isinstance(page_map, list)
                       else {int(pindex): PageLocator.decode(loc)
                             for pindex, loc in page_map.items()})
            for oid, page_map in raw["pages"].items()
        }
        info.owned_extents = [(pair[0], pair[1])
                              for pair in raw["owned_extents"]]
        info.data_bytes = raw["data_bytes"]
        # Fields absent from metadata written before incremental
        # kernel-state checkpoints existed.  Current metadata stores
        # the live set run-compressed; older checkpoints wrote a flat
        # OID list.
        live_runs = raw.get("live_oid_runs")
        if live_runs is not None:
            info.live_oids = set(expand_arith_runs(live_runs))
        else:
            live = raw.get("live_oids")
            info.live_oids = set(live) if live is not None else None
        info.records_skipped = raw.get("records_skipped", 0)
        return info

    def __repr__(self) -> str:
        flag = "partial " if self.partial else ""
        done = "complete" if self.complete else "incomplete"
        return (f"Checkpoint({flag}id={self.ckpt_id}, group={self.group_id}, "
                f"{len(self.object_records)} objs, {done})")
