"""Checkpoint metadata structures.

A checkpoint is a *delta*: the object records and page locators
modified since its parent.  The merged (restorable) view of an
application at checkpoint N is the newest-wins union of deltas along
the parent chain — walked by :meth:`ObjectStore.merged_view` at
restore time, exactly like reading a WAFL/ZFS snapshot through its
block-sharing ancestry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import CorruptRecord


class PageLocator:
    """Where one page's checkpointed content lives.

    Synthetic pages are ``("syn", seed)`` — their content is a pure
    function of the seed; the bytes were still charged to the device.
    Real pages are ``("ext", extent_offset, byte_offset, length)``
    inside a packed data extent.
    """

    __slots__ = ("kind", "seed", "extent", "byte_off", "length")

    def __init__(self, kind: str, seed: int = 0, extent: int = 0,
                 byte_off: int = 0, length: int = 0) -> None:
        self.kind = kind
        self.seed = seed
        self.extent = extent
        self.byte_off = byte_off
        self.length = length

    @classmethod
    def synthetic(cls, seed: int) -> "PageLocator":
        """Locator for a synthetic page (content = f(seed))."""
        return cls("syn", seed=seed)

    @classmethod
    def in_extent(cls, extent: int, byte_off: int, length: int) -> "PageLocator":
        """Locator for real bytes inside a packed data extent."""
        return cls("ext", extent=extent, byte_off=byte_off, length=length)

    def encode(self) -> list:
        """Wire form of the locator."""
        if self.kind == "syn":
            return ["syn", self.seed]
        return ["ext", self.extent, self.byte_off, self.length]

    @classmethod
    def decode(cls, raw: list) -> "PageLocator":
        """Parse a wire-form locator."""
        if not raw:
            raise CorruptRecord("empty page locator")
        if raw[0] == "syn":
            return cls.synthetic(raw[1])
        if raw[0] == "ext":
            return cls.in_extent(raw[1], raw[2], raw[3])
        raise CorruptRecord(f"bad locator kind {raw[0]!r}")


class CheckpointInfo:
    """In-memory (and, encoded, on-disk) description of one checkpoint."""

    def __init__(self, ckpt_id: int, group_id: int, name: str = "",
                 parent: Optional[int] = None, time_ns: int = 0,
                 partial: bool = False) -> None:
        self.ckpt_id = ckpt_id
        self.group_id = group_id
        self.name = name
        self.parent = parent
        self.time_ns = time_ns
        #: Partial checkpoints (sls_memckpt) hold one region and are
        #: composed on top of a full checkpoint at restore (§7).
        self.partial = partial
        self.complete = False
        #: oid -> extent offset of the serialized object record.
        self.object_records: Dict[int, Tuple[int, int]] = {}
        #: oid -> {pindex -> PageLocator} for pages dirtied here.
        self.pages: Dict[int, Dict[int, PageLocator]] = {}
        #: Every extent this checkpoint's delta owns: (offset, length).
        self.owned_extents: List[Tuple[int, int]] = []
        #: Byte count of page data this checkpoint wrote.
        self.data_bytes = 0
        #: Extent of this checkpoint's own metadata record.
        self.meta_extent: Optional[Tuple[int, int]] = None
        #: Every OID the serializer *walked* at checkpoint time —
        #: distinguishes "unchanged" (live but not re-written here)
        #: from "deleted" (absent).  None for checkpoints made before
        #: liveness tracking and for partial (memckpt) deltas, which
        #: restores treat as "everything in the chain is live".
        self.live_oids: Optional[Set[int]] = None
        #: Records the serializer skipped as unchanged (telemetry).
        self.records_skipped = 0

    # -- on-disk encoding ---------------------------------------------------------

    def encode_meta(self) -> Dict[str, Any]:
        """The checkpoint's on-disk metadata document."""
        return {
            "live_oids": (sorted(self.live_oids)
                          if self.live_oids is not None else None),
            "records_skipped": self.records_skipped,
            "ckpt_id": self.ckpt_id,
            "group_id": self.group_id,
            "name": self.name,
            "parent": self.parent,
            "time_ns": self.time_ns,
            "partial": self.partial,
            "object_records": {str(oid): [off, length]
                               for oid, (off, length)
                               in self.object_records.items()},
            "pages": {str(oid): {str(pindex): locator.encode()
                                 for pindex, locator in page_map.items()}
                      for oid, page_map in self.pages.items()},
            "owned_extents": [[off, length]
                              for off, length in self.owned_extents],
            "data_bytes": self.data_bytes,
        }

    @classmethod
    def decode_meta(cls, raw: dict) -> "CheckpointInfo":
        """Rebuild checkpoint metadata from its document."""
        info = cls(raw["ckpt_id"], raw["group_id"], raw["name"],
                   raw["parent"], raw["time_ns"], raw["partial"])
        info.object_records = {int(oid): (pair[0], pair[1])
                               for oid, pair in raw["object_records"].items()}
        info.pages = {
            int(oid): {int(pindex): PageLocator.decode(loc)
                       for pindex, loc in page_map.items()}
            for oid, page_map in raw["pages"].items()
        }
        info.owned_extents = [(pair[0], pair[1])
                              for pair in raw["owned_extents"]]
        info.data_bytes = raw["data_bytes"]
        # Fields absent from metadata written before incremental
        # kernel-state checkpoints existed.
        live = raw.get("live_oids")
        info.live_oids = set(live) if live is not None else None
        info.records_skipped = raw.get("records_skipped", 0)
        return info

    def __repr__(self) -> str:
        flag = "partial " if self.partial else ""
        done = "complete" if self.complete else "incomplete"
        return (f"Checkpoint({flag}id={self.ckpt_id}, group={self.group_id}, "
                f"{len(self.object_records)} objs, {done})")
