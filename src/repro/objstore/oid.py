"""64-bit on-disk object identifiers (§5.2: "Aurora maintains a
mapping of each object's address in the kernel to a 64-bit on-disk
object identifier").

The top byte encodes the object class so a store dump is
self-describing; the low 56 bits are a monotonic serial persisted in
the superblock, so OIDs remain unique across reboots.
"""

from __future__ import annotations

from ..errors import InvalidArgument

#: OID class prefixes.
CLASS_POSIX = 0x01    # processes, fds, sockets, pipes, ...
CLASS_MEMORY = 0x02   # VM objects
CLASS_FILE = 0x03     # file system objects (vnodes)
CLASS_GROUP = 0x04    # consistency-group metadata
CLASS_JOURNAL = 0x05  # non-COW journal objects

_CLASSES = (CLASS_POSIX, CLASS_MEMORY, CLASS_FILE, CLASS_GROUP,
            CLASS_JOURNAL)

_SERIAL_BITS = 56
_SERIAL_MASK = (1 << _SERIAL_BITS) - 1


def make_oid(obj_class: int, serial: int) -> int:
    """Compose an OID from class prefix + serial."""
    if obj_class not in _CLASSES:
        raise InvalidArgument(f"bad OID class {obj_class:#x}")
    if not 0 < serial <= _SERIAL_MASK:
        raise InvalidArgument(f"serial {serial} out of range")
    return (obj_class << _SERIAL_BITS) | serial


def oid_class(oid: int) -> int:
    """The class prefix of an OID."""
    return oid >> _SERIAL_BITS


def oid_serial(oid: int) -> int:
    """The serial component of an OID."""
    return oid & _SERIAL_MASK


class OIDAllocator:
    """Monotonic OID source; its cursor is persisted by the store."""

    def __init__(self, next_serial: int = 1) -> None:
        self._next = next_serial

    def allocate(self, obj_class: int) -> int:
        """Next OID of the given class."""
        oid = make_oid(obj_class, self._next)
        self._next += 1
        return oid

    @property
    def cursor(self) -> int:
        """Serial the next allocation will use (persisted)."""
        return self._next
