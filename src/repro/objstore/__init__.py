"""The Aurora object store (paper §7).

A copy-on-write store purpose-built for high-frequency checkpoints:

* every POSIX/memory/file object is a first-class on-disk object named
  by a 64-bit OID;
* checkpoints are *incremental* — each stores only the object records
  and pages modified since its parent — and commit with a two-slot
  superblock flip so a crash can never observe a torn checkpoint;
* garbage collection is WAFL/ZFS-style (reference transfer on snapshot
  deletion), never log-cleaning, so it cannot stall a checkpoint;
* ``sls_journal`` regions are preallocated non-COW extents updated in
  place for microsecond-latency synchronous writes.
"""

from .oid import OIDAllocator
from .blockalloc import ExtentAllocator
from .checkpoint import CheckpointInfo, PageLocator
from .journal import Journal
from .scrub import ScrubReport
from .store import ObjectStore

__all__ = [
    "OIDAllocator",
    "ExtentAllocator",
    "CheckpointInfo",
    "PageLocator",
    "Journal",
    "ObjectStore",
    "ScrubReport",
]
