"""Online repair: promote scrubber findings into applied fixes.

:func:`repair` is the write-side twin of :func:`~repro.objstore.scrub.
scrub`: where the scrubber only ever *reads* the device and reports,
the repairer takes a scrub report (or runs its own pass) and fixes
what is mechanically fixable:

* **Bad superblock slot** — a slot that holds bytes which no longer
  decode is rewritten from its valid mirror twin (the slots alternate
  by generation, so the twin carries the newest durable root; copying
  it restores two-slot redundancy without inventing state).
* **Stale refcounts** — per-extent reference counts are recomputed
  from the checkpoints' ``owned_extents`` (the authoritative source
  the scrubber itself cross-checks) and the mounted store's in-memory
  counters are reset to match; counters for extents no checkpoint
  owns are dropped.
* **Free-list overlaps** — free spans that overlap a live extent are
  trimmed so a later allocation can never hand out live blocks.
* **Overgrown shadow chains** — chains deeper than
  :data:`~repro.objstore.scrub.MAX_SHADOW_DEPTH` (the §6 eager-
  collapse bound) are collapsed reverse-style, shadow by shadow,
  until they meet the bound — the repair equivalent of the collapse
  pass an ablation run skipped.

Disk-state repairs are persisted through the store's own
catalog/superblock commit path, so a repaired image recovers exactly
like a healthy one.  Every applied fix is a ``repair.applied`` event
(``sls events``) and counts into ``sls.repair.applied``; what cannot
be fixed (e.g. both superblock slots gone) is recorded as skipped.
``sls scrub --repair`` drives this and re-scrubs to prove the fixes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core import events, telemetry
from . import records
from .blockalloc import _align_up
from .scrub import (MAX_SHADOW_DEPTH, ScrubReport, _chain_segment_len,
                    _read_superblocks, scrub)


class RepairAction:
    """One fix the repairer applied (or had to skip)."""

    __slots__ = ("kind", "detail", "applied")

    def __init__(self, kind: str, detail: str, applied: bool = True):
        self.kind = kind
        self.detail = detail
        self.applied = applied

    def __repr__(self) -> str:
        verb = "applied" if self.applied else "skipped"
        return f"RepairAction({verb} {self.kind}: {self.detail})"


class RepairReport:
    """Everything one repair pass did."""

    def __init__(self) -> None:
        self.actions: List[RepairAction] = []
        self.skipped: List[RepairAction] = []
        self.clock: Optional[Any] = None

    @property
    def applied(self) -> int:
        return len(self.actions)

    def add(self, kind: str, detail: str) -> None:
        self.actions.append(RepairAction(kind, detail))
        telemetry.registry().counter("sls.repair.applied",
                                     kind=kind).add(1)
        if self.clock is not None:
            events.emit(self.clock.now(), events.REPAIR_APPLIED,
                        repair=kind, detail=detail)

    def skip(self, kind: str, detail: str) -> None:
        self.skipped.append(RepairAction(kind, detail, applied=False))

    def __repr__(self) -> str:
        return (f"RepairReport({self.applied} applied, "
                f"{len(self.skipped)} skipped)")


def _repair_superblocks(store: Any, report: RepairReport) -> bool:
    """Rewrite any present-but-undecodable slot from its valid twin.

    Returns True when at least one slot was rewritten.
    """
    device = store.device
    slots = _read_superblocks(device)
    valid = [(slot, sb) for slot, sb, _present in slots if sb is not None]
    bad = [slot for slot, sb, present in slots if present and sb is None]
    if not bad:
        return False
    if not valid:
        for slot in bad:
            report.skip("superblock",
                        f"slot {slot} is damaged and no valid twin "
                        f"remains to copy from")
        return False
    # Copy the newest durable root into every damaged slot.
    _src_slot, newest = max(valid, key=lambda item: item[1]["generation"])
    payload = records.encode(records.REC_SUPERBLOCK, newest)
    for slot in bad:
        device.discard_extent(slot)
        device.write(slot, payload)
        report.add("superblock",
                   f"rewrote slot {slot} from valid twin "
                   f"(generation {newest['generation']})")
    return True


def _expected_refcounts(store: Any) -> Tuple[Dict[int, int], Dict[int, int]]:
    """(offset -> refcount, offset -> length) implied by metadata."""
    expected: Dict[int, int] = {}
    lengths: Dict[int, int] = {}
    for info in store.checkpoints.values():
        if not info.complete:
            continue
        for offset, length in info.owned_extents:
            expected[offset] = expected.get(offset, 0) + 1
            lengths[offset] = length
    return expected, lengths


def _repair_refcounts(store: Any, report: RepairReport) -> bool:
    """Reset the mounted store's refcounts to what metadata implies."""
    if not getattr(store, "_mounted", False):
        return False
    expected, _lengths = _expected_refcounts(store)
    changed = False
    for offset, count in sorted(expected.items()):
        have = store.extent_refs.get(offset, 0)
        if have != count:
            store.extent_refs[offset] = count
            report.add("refcount",
                       f"extent {offset}: reset refcount {have} -> {count}")
            changed = True
    for offset in sorted(set(store.extent_refs) - set(expected)):
        have = store.extent_refs.pop(offset)
        report.add("refcount",
                   f"extent {offset}: dropped stale refcount {have} "
                   f"(no checkpoint owns it)")
        changed = True
    return changed


def _repair_freelist(store: Any, report: RepairReport) -> bool:
    """Trim free spans overlapping live extents (never hand out live
    blocks again).  Returns True when the free list changed."""
    expected, lengths = _expected_refcounts(store)
    live = sorted((offset, lengths[offset]) for offset in expected)
    if not live:
        return False
    trimmed: List[Tuple[int, int]] = []
    changed = False
    for free_off, free_len in store.alloc._free:
        spans = [(free_off, free_len)]
        for off, raw_len in live:
            # Live extents are stored with raw lengths; overlap checks
            # must use the allocator's aligned footprint.
            length = _align_up(raw_len)
            next_spans: List[Tuple[int, int]] = []
            for s_off, s_len in spans:
                s_end = s_off + s_len
                end = off + length
                if off >= s_end or end <= s_off:
                    next_spans.append((s_off, s_len))
                    continue
                changed = True
                report.add("freelist",
                           f"trimmed live extent [{off}, {end}) out of "
                           f"free span [{s_off}, {s_end})")
                if s_off < off:
                    next_spans.append((s_off, off - s_off))
                if end < s_end:
                    next_spans.append((end, s_end - end))
            spans = next_spans
        trimmed.extend(spans)
    if changed:
        freed_delta = (sum(l for _o, l in store.alloc._free)
                       - sum(l for _o, l in trimmed))
        store.alloc._free = sorted(trimmed)
        # The trimmed bytes are live again: charge them back so
        # used_bytes() stays truthful.
        store.alloc.freed_bytes -= freed_delta
    return changed


def _repair_shadow_chains(sls: Any, report: RepairReport) -> int:
    """Collapse every chain past the eager-collapse bound.

    Returns the number of shadows collapsed.  Pages always move
    reverse-style (down into the parent) — the cheap direction, and
    the only one that preserves the base object's identity.
    """
    collapsed = 0
    for group in sorted(sls.groups.values(), key=lambda g: g.group_id):
        for oid, track in sorted(group.tracks.items()):
            top = track.active
            if top is None:
                continue
            while _chain_segment_len(track) - 1 > MAX_SHADOW_DEPTH:
                frozen = top.backing
                if frozen is None or frozen.backing is None:
                    break  # already at the base
                if frozen.shadow_count != 1:
                    report.skip("shadow-chain",
                                f"group {group.group_id} oid {oid}: "
                                f"shadow has forked children; cannot "
                                f"collapse")
                    break
                parent, moved = frozen.collapse_into_parent()
                frozen.shadow_count -= 1
                top.backing = parent
                parent.shadow_count += 1
                frozen.unref()
                collapsed += 1
                report.add("shadow-chain",
                           f"group {group.group_id} oid {oid}: collapsed "
                           f"one shadow ({moved} page(s) moved down)")
            if track.frozen is not None \
                    and track.frozen not in top.chain():
                # The marker pointed at a shadow that just merged away.
                track.frozen = None
                track.flushed = False
    return collapsed


def repair(store: Any, report: Optional[ScrubReport] = None,
           sls: Optional[Any] = None) -> RepairReport:
    """Fix what the scrub found; returns what was done.

    ``report`` is advisory — repairs are re-derived from the device
    and the mounted store so a stale report can never drive a wrong
    fix.  Pass the orchestrator as ``sls`` to also collapse overgrown
    shadow chains.  Disk-state changes are persisted through the
    store's normal catalog/superblock commit, so the repaired image
    recovers like a healthy one.
    """
    out = RepairReport()
    out.clock = getattr(store, "clock", None)
    if report is None:
        report = scrub(store, sls=sls)
    if report.ok:
        return out

    kinds = {finding.kind for finding in report.findings}
    _repair_superblocks(store, out)
    if "refcount" in kinds:
        _repair_refcounts(store, out)
    free_fixed = "freelist" in kinds and _repair_freelist(store, out)
    if sls is not None and "shadow-chain" in kinds:
        _repair_shadow_chains(sls, out)

    # Persist repaired allocator state through the normal commit path
    # (fresh catalog + superblock flip).  Slot rewrites are already
    # durable; refcount fixes are in-memory by construction.
    if free_fixed and getattr(store, "_mounted", False):
        store._write_catalog_and_superblock()
    unhandled = kinds - {"superblock", "refcount", "freelist",
                         "shadow-chain"}
    for kind in sorted(unhandled):
        out.skip(kind, "no mechanical repair for this finding kind")
    return out
