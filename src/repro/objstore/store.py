"""The object store proper.

Commit protocol (all COW — nothing live is ever overwritten):

1. Page data and object records are staged into freshly allocated
   extents and submitted to the device queue (asynchronously for
   continuous checkpoints, so the application runs while IO drains).
2. When every data write has completed, the checkpoint's metadata
   record, a new catalog record and finally the superblock (two slots,
   alternating by generation) are written.  Only the superblock flip
   makes the checkpoint visible, so a crash at any instant leaves the
   store at the *previous* complete checkpoint — the recovery property
   the crash tests hammer on.

Incremental state: each checkpoint stores a delta; the restorable view
is the newest-wins merge along the parent chain
(:meth:`ObjectStore.merged_view`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core import costs, events, flightrec, telemetry, tracing
from ..core.faults import InjectedCrash
from ..core.resilience import RetryPolicy
from ..errors import (CorruptRecord, InvalidArgument, MachineCrashed,
                      NoSuchCheckpoint, NoSuchObject, ReproError,
                      StoreError)
from ..hw.memory import Page
from ..hw.nvme import StripedArray, synthetic_payload
from ..units import PAGE_SIZE, STRIPE_SIZE
from . import records
from .blockalloc import ExtentAllocator
from .checkpoint import CheckpointInfo, PageLocator
from .journal import Journal
from .oid import CLASS_JOURNAL, OIDAllocator
from . import recovery as recovery_mod
from . import gc as gc_mod

#: Superblock slots live in the first two stripe units.
SUPERBLOCK_SLOTS = (0, STRIPE_SIZE)

#: Object records staged per batch extent.  Large enough to amortize
#: extent allocation and write submission across a checkpoint's record
#: set (10k fds → ~40 extents), small enough that one corrupt extent
#: loses a bounded slice of the catalog.
RECORD_BATCH = 256


class CheckpointTxn:
    """Staging area for one in-progress checkpoint."""

    def __init__(self, store: "ObjectStore", info: CheckpointInfo) -> None:
        self.store = store
        self.info = info
        self.staged_records: List[Tuple[int, bytes]] = []
        self.staged_pages: Dict[int, Dict[int, Page]] = {}
        self.committed = False
        self.aborted = False
        #: The operation trace open when the transaction began; async
        #: commit finalization re-enters it so the metadata/superblock
        #: IOs are attributed to the checkpoint that issued them.
        self.trace = tracing.current()

    def put_object(self, oid: int, otype: str, state: Any) -> None:
        """Stage one serialized object record."""
        self.store.clock.advance(costs.STORE_RECORD_STAGE)
        self.staged_records.append(
            (oid, records.encode_object(oid, otype, state)))

    def put_pages(self, oid: int, pages: Dict[int, Page]) -> None:
        """Stage dirty pages for a memory/file object."""
        if not pages:
            return
        self.staged_pages.setdefault(oid, {}).update(pages)

    def staged_bytes(self) -> int:
        """Bytes this transaction will write (records + pages)."""
        total = sum(len(data) for _oid, data in self.staged_records)
        total += sum(len(pages) * PAGE_SIZE
                     for pages in self.staged_pages.values())
        return total


class ObjectStore:
    """One formatted store on a machine's NVMe array."""

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        self.device: StripedArray = machine.storage
        self.clock = machine.clock
        self.loop = machine.loop
        self.alloc = ExtentAllocator(self.device.capacity)
        self.oids = OIDAllocator()
        self.checkpoints: Dict[int, CheckpointInfo] = {}
        self.journals: Dict[int, Journal] = {}
        #: Extent offset -> number of checkpoint deltas referencing it.
        self.extent_refs: Dict[int, int] = {}
        self._ckpt_counter = 1
        self._generation = 0
        self._catalog_extent: Optional[Tuple[int, int]] = None
        #: The flight-recorder snapshot anchored by the current
        #: superblock (offset, length), when one has been written.
        self._flightrec_extent: Optional[Tuple[int, int]] = None
        #: Highest cluster membership epoch this store has promised
        #: (0 = never participated in an epoch bump).  Durable via the
        #: superblock so fencing survives crash + remount.
        self.cluster_epoch = 0
        self._mounted = False
        #: Pending async commits: ckpt_id -> callbacks.
        self._commit_watchers: Dict[int, List[Callable[[CheckpointInfo], None]]] = {}
        #: In-flight async commits: ckpt_id -> (group_id, finalize time).
        #: Targeted waits (sls_barrier) key on these instead of
        #: draining the whole event loop.
        self._pending_commits: Dict[int, Tuple[int, int]] = {}
        #: Async-commit failure callbacks: ckpt_id -> callbacks(exc).
        self._commit_failures: Dict[int, List[Callable[[Exception], None]]] = {}
        #: Deterministic retry/backoff for every device command the
        #: store issues; transient device errors never escape it short
        #: of :class:`~repro.errors.RetriesExhausted`.
        self.retry = RetryPolicy(self.clock, seed=0x51, op="store")
        self.stats = telemetry.StatsView(
            "sls.store", keys=("commits", "bytes_flushed", "recoveries",
                               "reclaimed_bytes"))

    # -- lifecycle ------------------------------------------------------------------

    def format(self) -> None:
        """Initialize an empty store (destroys existing content)."""
        self.alloc = ExtentAllocator(self.device.capacity)
        self.oids = OIDAllocator()
        self.checkpoints = {}
        self.journals = {}
        self.extent_refs = {}
        self._ckpt_counter = 1
        self._generation = 0
        self._catalog_extent = None
        self._flightrec_extent = None
        self.cluster_epoch = 0
        self._write_catalog_and_superblock()
        self._mounted = True

    def mount(self) -> bool:
        """Recover the store from the device.

        Returns True when an existing store was found (and its last
        complete checkpoints recovered); False when the array is blank
        and :meth:`format` is required.
        """
        state = recovery_mod.recover(self)
        if state is None:
            return False
        self._mounted = True
        self.stats["recoveries"] += 1
        return True

    def _require_mounted(self) -> None:
        if not self._mounted:
            raise StoreError("store is not mounted (format() or mount())")

    # -- OIDs --------------------------------------------------------------------------

    def alloc_oid(self, obj_class: int) -> int:
        """Allocate a 64-bit on-disk object id of the given class."""
        self._require_mounted()
        return self.oids.allocate(obj_class)

    # -- checkpoint creation ----------------------------------------------------------------

    def begin_checkpoint(self, group_id: int, name: str = "",
                         parent: Optional[int] = None,
                         partial: bool = False) -> CheckpointTxn:
        """Open a checkpoint transaction (delta against ``parent``)."""
        self._require_mounted()
        info = CheckpointInfo(self._ckpt_counter, group_id, name=name,
                              parent=parent, time_ns=self.clock.now(),
                              partial=partial)
        self._ckpt_counter += 1
        return CheckpointTxn(self, info)

    def _pack_pages(self, txn: CheckpointTxn) -> int:
        """Write staged pages into stripe-sized extents.

        Returns the latest completion time among the submitted writes.
        Real-byte pages are packed (realized) into extent payloads;
        synthetic pages are charged as synthetic extents of equal size
        with their seeds carried in the checkpoint metadata.
        """
        info = txn.info
        last_done = self.clock.now()
        # Real-byte pages are packed across object boundaries: each
        # stripe-sized payload may carry the tail pages of one object
        # and the head of the next, so a checkpoint's partial stripes
        # coalesce into one staged write instead of one per object.
        real_batch: List[Tuple[Dict[int, PageLocator], int, Page]] = []

        def flush_real() -> None:
            nonlocal last_done, real_batch
            if not real_batch:
                return
            payload = b"".join(page.realize()
                               for _map, _p, page in real_batch)
            extent = self.alloc.alloc(len(payload))
            # Ownership is recorded before the submit so an abort
            # after a failed write still frees this extent.
            info.owned_extents.append((extent, len(payload)))
            self.clock.advance(costs.STORE_ALLOC_EXTENT)
            done = self.retry.run(
                lambda: self.device.submit_write(extent, payload),
                op="store.flush")
            last_done = max(last_done, done)
            info.data_bytes += len(payload)
            for index, (page_map, pindex, _page) in enumerate(real_batch):
                page_map[pindex] = PageLocator.in_extent(
                    extent, index * PAGE_SIZE, PAGE_SIZE)
            real_batch = []

        for oid, pages in txn.staged_pages.items():
            page_map = info.pages.setdefault(oid, {})
            syn_count = 0

            for pindex in sorted(pages):
                page = pages[pindex]
                if page.synthetic:
                    page_map[pindex] = PageLocator.synthetic(page.seed)
                    syn_count += 1
                else:
                    real_batch.append((page_map, pindex, page))
                    if len(real_batch) * PAGE_SIZE >= STRIPE_SIZE:
                        flush_real()

            # Synthetic pages: identical IO accounting, virtual bytes.
            remaining = syn_count * PAGE_SIZE
            while remaining > 0:
                chunk = min(remaining, STRIPE_SIZE)
                extent = self.alloc.alloc(chunk)
                info.owned_extents.append((extent, chunk))
                self.clock.advance(costs.STORE_ALLOC_EXTENT)
                syn_extent, syn_chunk = extent, chunk
                done = self.retry.run(
                    lambda: self.device.submit_write(
                        syn_extent,
                        synthetic_payload(seed=oid, length=syn_chunk)),
                    op="store.flush")
                last_done = max(last_done, done)
                info.data_bytes += chunk
                remaining -= chunk
        flush_real()
        return last_done

    def _write_records(self, txn: CheckpointTxn) -> int:
        """Write staged object records; returns latest completion time.

        Records are staged in :data:`RECORD_BATCH`-sized batch extents
        (one allocation + one submitted write per batch); every OID in
        a batch points at the shared extent.  A single staged record
        keeps the bare per-object envelope, so small checkpoints write
        byte-identical extents to the pre-batching format.
        """
        info = txn.info
        last_done = self.clock.now()
        staged = txn.staged_records
        for start in range(0, len(staged), RECORD_BATCH):
            batch = staged[start:start + RECORD_BATCH]
            if len(batch) == 1:
                payload = batch[0][1]
            else:
                payload = records.encode_objects(
                    [data for _oid, data in batch])
            extent = self.alloc.alloc(len(payload))
            info.owned_extents.append((extent, len(payload)))
            self.clock.advance(costs.STORE_ALLOC_EXTENT)
            rec_extent, rec_payload = extent, payload
            done = self.retry.run(
                lambda: self.device.submit_write(rec_extent, rec_payload),
                op="store.flush")
            last_done = max(last_done, done)
            for oid, _data in batch:
                info.object_records[oid] = (extent, len(payload))
        return last_done

    def _finalize_commit(self, txn: CheckpointTxn) -> None:
        """Data is durable: write meta + catalog, flip the superblock."""
        with tracing.use(txn.trace):
            with telemetry.registry().span(self.clock, "store.finalize",
                                           group=txn.info.group_id):
                self._finalize_commit_inner(txn)
            if txn.trace is not None:
                # The superblock flip landed: the checkpoint trace
                # reached its durable point.  A crash before here
                # leaves the trace incomplete.
                txn.trace.complete = True
            events.emit(self.clock.now(), events.CKPT_COMMIT,
                        group=txn.info.group_id, ckpt=txn.info.ckpt_id,
                        bytes=txn.info.data_bytes)

    def _finalize_commit_inner(self, txn: CheckpointTxn) -> None:
        info = txn.info
        payload = records.encode(records.REC_CKPT_META, info.encode_meta())
        meta_extent = self.alloc.alloc(len(payload))
        try:
            self.retry.run(lambda: self.device.write(meta_extent, payload),
                           op="store.meta")
        except (InjectedCrash, MachineCrashed):
            raise
        except ReproError:
            self.alloc.free(meta_extent, len(payload))
            raise
        info.meta_extent = (meta_extent, len(payload))
        info.complete = True
        self._pending_commits.pop(info.ckpt_id, None)
        self.checkpoints[info.ckpt_id] = info
        for offset, _length in info.owned_extents:
            self.extent_refs[offset] = self.extent_refs.get(offset, 0) + 1
        try:
            self._write_catalog_and_superblock(pending={
                "group": info.group_id, "ckpt": info.ckpt_id,
                "name": info.name or "", "bytes": info.data_bytes})
        except (InjectedCrash, MachineCrashed):
            raise
        except ReproError:
            # The flip never landed: the checkpoint must not look
            # committed in memory when it is invisible on disk.
            info.complete = False
            info.meta_extent = None
            del self.checkpoints[info.ckpt_id]
            for offset, _length in info.owned_extents:
                refs = self.extent_refs.get(offset, 0) - 1
                if refs > 0:
                    self.extent_refs[offset] = refs
                else:
                    self.extent_refs.pop(offset, None)
            self.device.discard_extent(meta_extent)
            self.alloc.free(meta_extent, len(payload))
            raise
        # Only after the flip: the flushed pages' content is durable,
        # so stamp them clean for IO-free pageout eviction (§6).  A
        # write in the meantime replaced the Page object, leaving the
        # new content correctly dirty.
        for oid, page_map in info.pages.items():
            staged = txn.staged_pages.get(oid, {})
            for pindex, locator in page_map.items():
                page = staged.get(pindex)
                if page is not None:
                    page.clean_locator = locator
        self._commit_failures.pop(info.ckpt_id, None)
        self.stats["commits"] += 1
        self.stats["bytes_flushed"] += info.data_bytes
        # Chain depth at commit time — the knob retain_last exists to
        # bound.  Walked defensively: an ancestor may still be an
        # in-flight async commit and thus not yet registered.
        depth = 0
        current: Optional[CheckpointInfo] = info
        while current is not None:
            depth += 1
            current = (self.checkpoints.get(current.parent)
                       if current.parent is not None else None)
        telemetry.registry().histogram(
            "sls.store.chain_depth", group=info.group_id).observe(depth)
        for callback in self._commit_watchers.pop(info.ckpt_id, []):
            callback(info)

    def commit(self, txn: CheckpointTxn, sync: bool = False,
               on_complete: Optional[Callable[[CheckpointInfo], None]] = None,
               on_failure: Optional[Callable[[Exception], None]] = None
               ) -> CheckpointInfo:
        """Commit a checkpoint transaction.

        ``sync=False`` (the continuous-checkpoint path) returns as soon
        as the writes are queued; the commit finalizes via the event
        loop when the data lands, and ``on_complete`` fires then.
        ``sync=True`` advances the clock to durability before
        returning (sls_checkpoint + sls_barrier semantics).

        A storage failure that survives the retry policy aborts the
        transaction — every allocated extent is released and queued
        writes cancelled — before the error propagates (sync) or
        ``on_failure`` fires (async).  Injected power failures are the
        exception: the host is dying, so nothing is cleaned up.
        """
        self._require_mounted()
        if txn.committed:
            raise InvalidArgument("transaction already committed")
        txn.committed = True
        submitted = self.clock.now()
        try:
            done_pages = self._pack_pages(txn)
            done_records = self._write_records(txn)
            data_done = max(done_pages, done_records)
            telemetry.registry().record_span("store.flush", submitted,
                                             data_done,
                                             group=txn.info.group_id)
            if on_complete is not None:
                self._commit_watchers.setdefault(txn.info.ckpt_id,
                                                 []).append(on_complete)
            if on_failure is not None:
                self._commit_failures.setdefault(txn.info.ckpt_id,
                                                 []).append(on_failure)
            if sync:
                self.clock.advance_to(data_done)
                self.device.poll()
                self._finalize_commit(txn)
            else:
                self._pending_commits[txn.info.ckpt_id] = (txn.info.group_id,
                                                           data_done)
                self.loop.call_at(data_done,
                                  lambda: self._finalize_async(txn))
        except (InjectedCrash, MachineCrashed):
            raise
        except ReproError:
            self.abort_checkpoint(txn)
            raise
        return txn.info

    def _finalize_async(self, txn: CheckpointTxn) -> None:
        """Event-loop finalizer: failures abort instead of unwinding
        into whoever happens to be driving the loop."""
        try:
            self._finalize_commit(txn)
        except (InjectedCrash, MachineCrashed):
            raise
        except ReproError as exc:
            self.abort_checkpoint(txn)
            for callback in self._commit_failures.pop(txn.info.ckpt_id, []):
                callback(exc)

    def abort_checkpoint(self, txn: CheckpointTxn) -> int:
        """Roll back a failed checkpoint transaction.

        Frees every extent the transaction allocated, cancels its
        writes still sitting in device queues and discards anything
        that already landed — blockalloc accounting returns exactly to
        its pre-checkpoint state (the no-leaked-blocks regression test
        asserts this).  Returns the number of bytes released.
        """
        info = txn.info
        if info.complete:
            raise InvalidArgument(
                f"checkpoint {info.ckpt_id} already committed")
        if txn.aborted:
            return 0
        txn.aborted = True
        released = 0
        for offset, length in info.owned_extents:
            self.device.cancel_extent(offset)
            self.device.discard_extent(offset)
            self.alloc.free(offset, length)
            released += length
        info.owned_extents = []
        info.object_records = {}
        info.pages = {}
        info.data_bytes = 0
        self._pending_commits.pop(info.ckpt_id, None)
        self._commit_watchers.pop(info.ckpt_id, None)
        events.emit(self.clock.now(), events.CKPT_ABORT,
                    group=info.group_id, ckpt=info.ckpt_id,
                    released_bytes=released)
        telemetry.registry().counter("sls.store.aborts",
                                     group=info.group_id).add(1)
        return released

    def pending_commit_deadline(self, group_id: Optional[int] = None
                                ) -> Optional[int]:
        """Earliest finalize time among in-flight async commits.

        With ``group_id``, only that group's commits are considered —
        the key to waiting out one group's flush without draining
        every other group's (or spinning on periodic timers).
        """
        deadlines = [done for gid, done in self._pending_commits.values()
                     if group_id is None or gid == group_id]
        return min(deadlines) if deadlines else None

    # -- catalog / superblock ------------------------------------------------------------

    def _write_catalog_and_superblock(
            self, pending: Optional[Dict[str, Any]] = None) -> None:
        catalog_body = {
            "checkpoints": {
                str(ckpt_id): {
                    "meta_extent": list(getattr(info, "meta_extent",
                                                (0, 0))),
                }
                for ckpt_id, info in self.checkpoints.items()
                if info.complete
            },
        }
        payload = records.encode(records.REC_CATALOG, catalog_body)
        old_catalog = self._catalog_extent
        extent = self.alloc.alloc(len(payload))
        try:
            self.retry.run(lambda: self.device.write(extent, payload),
                           op="store.catalog")
        except (InjectedCrash, MachineCrashed):
            raise
        except ReproError:
            self.alloc.free(extent, len(payload))
            raise
        self._catalog_extent = (extent, len(payload))

        self._generation += 1
        # The flight recorder rides every flip: a fixed-size snapshot
        # of the telemetry surfaces, placed at zero simulated cost and
        # anchored by the superblock about to be written — durable
        # exactly when the commit is.  Fixed size keeps the allocator
        # cursor, free list and superblock length identical whether
        # telemetry is enabled or not (timing-identity invariant).
        old_flightrec = self._flightrec_extent
        rec_payload = flightrec.encode_snapshot(
            self, pending=pending, generation=self._generation)
        rec_offset = self.alloc.alloc(len(rec_payload))
        self.device.place_extent(rec_offset, rec_payload)
        self._flightrec_extent = (rec_offset, len(rec_payload))

        superblock_body: Dict[str, Any] = {
            "generation": self._generation,
            "catalog_extent": list(self._catalog_extent),
            "flightrec": list(self._flightrec_extent),
            "alloc_cursor": self.alloc.cursor,
            "free_list": [[off, length] for off, length in self.alloc._free],
            "oid_cursor": self.oids.cursor,
            "ckpt_counter": self._ckpt_counter,
            "journal_dir": {str(jid): journal.encode_meta()
                            for jid, journal in self.journals.items()},
        }
        # Written only once the store has joined a cluster epoch, so
        # single-machine stores keep a byte-identical superblock (the
        # timing-identity invariant again).
        if self.cluster_epoch:
            superblock_body["cluster_epoch"] = self.cluster_epoch
        superblock = records.encode(records.REC_SUPERBLOCK, superblock_body)
        slot = SUPERBLOCK_SLOTS[self._generation % 2]
        self.clock.advance(costs.STORE_COMMIT)
        try:
            self.retry.run(lambda: self.device.write(slot, superblock),
                           op="store.superblock")
        except (InjectedCrash, MachineCrashed):
            raise
        except ReproError:
            # The flip never landed: fall back to the previous catalog
            # so in-memory state matches what recovery would see.
            self.device.discard_extent(extent)
            self.alloc.free(extent, len(payload))
            self._catalog_extent = old_catalog
            self.device.discard_extent(rec_offset)
            self.alloc.free(rec_offset, len(rec_payload))
            self._flightrec_extent = old_flightrec
            self._generation -= 1
            raise
        if old_catalog is not None:
            self.alloc.free(*old_catalog)
        if old_flightrec is not None:
            # Freed but not discarded: the previous superblock slot
            # still anchors it until the next flip overwrites the slot.
            self.alloc.free(*old_flightrec)

    def promise_cluster_epoch(self, epoch: int) -> None:
        """Durably promise a cluster membership epoch: once the
        superblock flip lands, this store fences any manifest carrying
        an older epoch — across crash and remount.  Promises are
        monotonic; an older epoch is a no-op."""
        if epoch <= self.cluster_epoch:
            return
        previous = self.cluster_epoch
        self.cluster_epoch = epoch
        try:
            self._write_catalog_and_superblock()
        except (InjectedCrash, MachineCrashed):
            raise
        except ReproError:
            # The flip never landed: the promise was never made.
            self.cluster_epoch = previous
            raise

    # -- reading back -----------------------------------------------------------------------

    def get_checkpoint(self, ckpt_id: int) -> CheckpointInfo:
        """Checkpoint metadata by id (NoSuchCheckpoint otherwise)."""
        try:
            return self.checkpoints[ckpt_id]
        except KeyError:
            raise NoSuchCheckpoint(f"checkpoint {ckpt_id}")

    def checkpoints_for(self, group_id: int,
                        include_partial: bool = False) -> List[CheckpointInfo]:
        """A group's complete checkpoints, oldest first."""
        return [info for info in sorted(self.checkpoints.values(),
                                        key=lambda i: i.ckpt_id)
                if info.group_id == group_id and info.complete
                and (include_partial or not info.partial)]

    def find_latest_complete(self, group_id: int) -> Optional[CheckpointInfo]:
        """The group's newest complete full checkpoint, if any."""
        chain = self.checkpoints_for(group_id)
        return chain[-1] if chain else None

    def parent_chain(self, ckpt_id: int) -> List[CheckpointInfo]:
        """The checkpoint and its ancestors, newest first."""
        chain = []
        current: Optional[int] = ckpt_id
        while current is not None:
            info = self.get_checkpoint(current)
            chain.append(info)
            current = info.parent
        return chain

    def effective_live_oids(self, ckpt_id: int) -> Optional[Set[int]]:
        """The OIDs a restore at ``ckpt_id`` may still need.

        The newest non-partial checkpoint carrying liveness info
        defines the base set (its serializer walked every reachable
        object, so anything absent was deleted before it).  Deltas
        *newer* than that base — partials and checkpoints written
        before liveness tracking — may introduce brand-new OIDs, so
        their record/page keys are unioned in conservatively.

        Returns None ("everything along the chain is live") when no
        chain checkpoint carries liveness info, which keeps legacy
        stores, SLSFS checkpoints and pure-partial chains on the
        original unfiltered semantics.
        """
        base: Optional[Set[int]] = None
        newer: Set[int] = set()
        for info in self.parent_chain(ckpt_id):
            if not info.partial and info.live_oids is not None:
                base = info.live_oids
                break
            newer.update(info.object_records)
            newer.update(info.pages)
        if base is None:
            return None
        return base | newer

    def merged_view(self, ckpt_id: int) -> Tuple[Dict[int, Tuple[int, int]],
                                                 Dict[int, Dict[int, PageLocator]]]:
        """Newest-wins union of deltas along the parent chain.

        Returns ``(object_record_extents, page_locators)`` describing
        the full application state at ``ckpt_id``.  With incremental
        checkpoints an unchanged object's record lives in an ancestor
        delta; a *deleted* object's record may also still sit in an
        ancestor, so the union is filtered down to the checkpoint's
        effective live set (when known) to keep dead objects from
        resurfacing at restore.
        """
        live = self.effective_live_oids(ckpt_id)
        merged_records: Dict[int, Tuple[int, int]] = {}
        merged_pages: Dict[int, Dict[int, PageLocator]] = {}
        for info in self.parent_chain(ckpt_id):
            for oid, extent in info.object_records.items():
                if live is not None and oid not in live:
                    continue
                merged_records.setdefault(oid, extent)
            for oid, page_map in info.pages.items():
                if live is not None and oid not in live:
                    continue
                target = merged_pages.setdefault(oid, {})
                for pindex, locator in page_map.items():
                    target.setdefault(pindex, locator)
        return merged_records, merged_pages

    def read_object_record(self, extent: Tuple[int, int],
                           oid: Optional[int] = None) -> Tuple[int, str, Any]:
        """Read + decode one object record from a record extent.

        ``oid`` selects the wanted object out of a batch extent; it may
        be omitted only for extents known to hold a single record.
        """
        payload = self.retry.run(lambda: self.device.read(extent[0]),
                                 op="store.read")
        if not isinstance(payload, bytes):
            raise CorruptRecord("object record extent holds synthetic data")
        entries = records.decode_objects(payload)
        if oid is None:
            if len(entries) != 1:
                raise CorruptRecord(
                    f"record extent holds {len(entries)} objects; "
                    f"an OID is required to select one")
            return entries[0]
        for entry in entries:
            if entry[0] == oid:
                return entry
        raise CorruptRecord(f"record OID mismatch for {oid}")

    def _decode_record(self, oid: int, payload: Any) -> Tuple[str, Any]:
        if not isinstance(payload, bytes):
            raise CorruptRecord("record extent holds synthetic data")
        for r_oid, otype, state in records.decode_objects(payload):
            if r_oid == oid:
                return otype, state
        raise CorruptRecord(f"record OID mismatch for {oid}")

    def record_fallbacks(self, ckpt_id: int,
                         primary: Dict[int, Tuple[int, int]]
                         ) -> Dict[int, List[Tuple[int, int]]]:
        """Older record extents per OID along the parent chain.

        The read path uses these as redundancy: when the newest copy
        of a record fails its checksum, an ancestor delta's copy of
        the same object (stale but internally consistent) can stand
        in — the parent-checkpoint analogue of ZFS's ditto blocks.
        """
        fallbacks: Dict[int, List[Tuple[int, int]]] = {}
        for info in self.parent_chain(ckpt_id):
            for oid, extent in info.object_records.items():
                newest = primary.get(oid)
                if newest is None or tuple(extent) == tuple(newest):
                    continue
                fallbacks.setdefault(oid, []).append(extent)
        return fallbacks

    def _read_record_resilient(self, oid: int, extent: Tuple[int, int],
                               fallbacks: Dict[int, List[Tuple[int, int]]]
                               ) -> Tuple[Tuple[str, Any], int]:
        """Checksum-mismatch recovery: re-read the primary, then fall
        back to ancestor copies, newest first."""
        candidates = [extent] + fallbacks.get(oid, [])
        last_done = self.clock.now()
        last_error: Optional[CorruptRecord] = None
        for rank, candidate in enumerate(candidates):
            cand_off = candidate[0]
            try:
                payload, done = self.retry.run(
                    lambda: self.device.read_async(cand_off),
                    op="store.read")
                last_done = max(last_done, done)
                value = self._decode_record(oid, payload)
            except CorruptRecord as exc:
                last_error = exc
                continue
            events.emit(self.clock.now(), events.READ_FALLBACK,
                        oid=oid, extent=cand_off,
                        source="reread" if rank == 0 else "parent")
            telemetry.registry().counter(
                "sls.store.read_fallbacks",
                source="reread" if rank == 0 else "parent").add(1)
            return value, last_done
        assert last_error is not None
        raise last_error

    def read_object_records(self, extents: Dict[int, Tuple[int, int]],
                            fallbacks: Optional[Dict[int, List[Tuple[int, int]]]] = None
                            ) -> Dict[int, Tuple[str, Any]]:
        """Batched record reads: all dispatched at once, one wait.

        Restores issue every record read in parallel (queue depth ≫ 1)
        so the per-command latency overlaps instead of serializing.
        With ``fallbacks`` (see :meth:`record_fallbacks`), a record
        that fails validation is re-read and then recovered from an
        ancestor copy instead of failing the whole restore.
        """
        decoded: Dict[int, Tuple[str, Any]] = {}
        last_done = self.clock.now()
        # Batched staging means many OIDs share one record extent:
        # read and decode each distinct extent once, then hand every
        # resident OID its slice.
        by_offset: Dict[int, List[Tuple[int, Tuple[int, int]]]] = {}
        for oid, extent in extents.items():
            by_offset.setdefault(extent[0], []).append((oid, extent))
        for offset, wanted in by_offset.items():
            try:
                payload, done = self.retry.run(
                    lambda: self.device.read_async(offset),
                    op="store.read")
                last_done = max(last_done, done)
                if not isinstance(payload, bytes):
                    raise CorruptRecord(
                        "record extent holds synthetic data")
                entries = {r_oid: (otype, state) for r_oid, otype, state
                           in records.decode_objects(payload)}
                for oid, _extent in wanted:
                    if oid not in entries:
                        raise CorruptRecord(
                            f"record OID mismatch for {oid}")
                for oid, _extent in wanted:
                    decoded[oid] = entries[oid]
            except CorruptRecord:
                if fallbacks is None:
                    raise
                for oid, extent in wanted:
                    decoded[oid], done = self._read_record_resilient(
                        oid, extent, fallbacks)
                    last_done = max(last_done, done)
        self.clock.advance_to(last_done)
        return decoded

    def fetch_page(self, locator: PageLocator) -> Page:
        """Materialize a page from its locator (reads the device)."""
        if locator.kind == "syn":
            return Page(seed=locator.seed)
        payload = self.retry.run(lambda: self.device.read(locator.extent),
                                 op="store.read")
        if not isinstance(payload, bytes):
            raise CorruptRecord("page extent holds synthetic data")
        data = payload[locator.byte_off:locator.byte_off + locator.length]
        return Page(data=data)

    # -- garbage collection ---------------------------------------------------------------------

    def delete_checkpoint(self, ckpt_id: int) -> int:
        """WAFL-style snapshot deletion; returns bytes reclaimed."""
        self._require_mounted()
        info = self.checkpoints.get(ckpt_id)
        group_id = info.group_id if info is not None else 0
        with tracing.trace(self.clock, tracing.GC, group=group_id,
                           ckpt=ckpt_id) as trace_obj:
            reclaimed = gc_mod.delete_checkpoint(self, ckpt_id)
            if trace_obj is not None:
                trace_obj.complete = True
        self.stats["reclaimed_bytes"] += reclaimed
        events.emit(self.clock.now(), events.GC_RECLAIM, group=group_id,
                    ckpt=ckpt_id, bytes=reclaimed)
        return reclaimed

    def truncate_checkpoint(self, ckpt_id: int) -> int:
        """Delete a childless checkpoint from the new end of its
        chain (quorum recovery's tail truncation); returns bytes
        reclaimed."""
        self._require_mounted()
        info = self.checkpoints.get(ckpt_id)
        group_id = info.group_id if info is not None else 0
        reclaimed = gc_mod.truncate_checkpoint(self, ckpt_id)
        self.stats["reclaimed_bytes"] += reclaimed
        events.emit(self.clock.now(), events.GC_RECLAIM, group=group_id,
                    ckpt=ckpt_id, bytes=reclaimed, truncated=True)
        return reclaimed

    def retain_last(self, group_id: int, keep: int) -> int:
        """Trim a group's history to its ``keep`` newest checkpoints."""
        reclaimed = 0
        chain = self.checkpoints_for(group_id, include_partial=True)
        while len(chain) > keep:
            reclaimed += self.delete_checkpoint(chain[0].ckpt_id)
            chain = self.checkpoints_for(group_id, include_partial=True)
        return reclaimed

    # -- journals -------------------------------------------------------------------------------------

    def journal_create(self, capacity: int) -> Journal:
        """Preallocate a non-COW journal region (sync, small)."""
        self._require_mounted()
        jid = self.alloc_oid(CLASS_JOURNAL)
        base = self.alloc.alloc(capacity)
        journal = Journal(self, jid, base, capacity)
        self.journals[jid] = journal
        journal._write_header()
        # Journal existence must survive a crash: flip the superblock.
        self._write_catalog_and_superblock()
        return journal

    def journal(self, jid: int) -> Journal:
        """An existing journal by id (NoSuchObject otherwise)."""
        try:
            return self.journals[jid]
        except KeyError:
            raise NoSuchObject(f"journal {jid}")

    # -- swap integration ----------------------------------------------------------------------------------

    def stage_swap_page(self, vmobject: Any, pindex: int,
                        page: Page) -> PageLocator:
        """Flush a dirty page on the unified checkpoint/swap data path."""
        if page.synthetic:
            extent = self.alloc.alloc(PAGE_SIZE)
            self.device.submit_write(
                extent, synthetic_payload(page.seed, PAGE_SIZE))
            return PageLocator.synthetic(page.seed)
        payload = page.realize()
        extent = self.alloc.alloc(len(payload))
        done = self.device.submit_write(extent, payload)
        self.clock.advance_to(done)
        self.device.poll()
        return PageLocator.in_extent(extent, 0, len(payload))

    def fetch_swapped_page(self, locator: PageLocator) -> Page:
        """Read an evicted page back from the store."""
        return self.fetch_page(locator)

    # -- stats ------------------------------------------------------------------------------------------------

    def used_bytes(self) -> int:
        """Live bytes allocated on the array."""
        return self.alloc.used_bytes()
