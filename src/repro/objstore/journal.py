"""Non-COW journal objects (§7 "Non-COW Objects for the Aurora API").

A journal is a preallocated extent region updated *in place* — the one
deliberate exception to the store's COW rule — giving ``sls_journal``
its 28 µs synchronous 4 KiB append.  Records are framed with an epoch
and sequence number; ``truncate`` bumps the epoch by rewriting the
header slot, so recovery replays exactly the appends of the current
epoch and stops at the first missing or stale slot.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..core import telemetry
from ..errors import CorruptRecord, InvalidArgument, NoSpace, StoreError
from ..units import KiB
from . import records

#: Slot granularity of the journal region.  A record starts on a slot
#: boundary and occupies as many slots as it needs; it is written as a
#: *single* streaming command, so a 4 KiB append costs one sync write
#: (Table 5: 28 µs) and a 1 GiB append streams at the single-stream
#: bandwidth (Table 5: 417 ms) instead of paying per-slot latency.
SLOT_SIZE = 4 * KiB + 512


class Journal:
    """One journal object: header slot + append slots, in place."""

    def __init__(self, store: Any, jid: int, base: int, capacity: int,
                 epoch: int = 1) -> None:
        self.store = store
        self.jid = jid
        self.base = base
        self.capacity = capacity  # bytes, including the header slot
        self.epoch = epoch
        self.head_slot = 1        # next append slot
        self.appends = 0

    @property
    def nslots(self) -> int:
        """Total slots in the region, header included."""
        return self.capacity // SLOT_SIZE

    def _slot_offset(self, slot: int) -> int:
        return self.base + slot * SLOT_SIZE

    # -- durability --------------------------------------------------------------

    def _write_header(self) -> None:
        payload = records.encode(records.REC_JOURNAL, {
            "jid": self.jid, "epoch": self.epoch, "header": True,
        })
        self.store.retry.run(
            lambda: self.store.device.write(self.base, payload, sync=True),
            op="journal.header")

    def append(self, data: bytes) -> int:
        """Synchronously append ``data``; returns the record's slot.

        This is the latency-critical path: one sync device write per
        slot, no metadata updates, no COW.
        """
        if not data:
            raise InvalidArgument("cannot append an empty record")
        payload = records.encode(records.REC_JOURNAL, {
            "jid": self.jid,
            "epoch": self.epoch,
            "seq": self.head_slot,
            "data": data,
        })
        nslots = (len(payload) + SLOT_SIZE - 1) // SLOT_SIZE
        if self.head_slot + nslots > self.nslots:
            raise NoSpace(f"journal {self.jid} full")
        first_slot = self.head_slot
        start = self.store.clock.now()
        self.store.retry.run(
            lambda: self.store.device.write(self._slot_offset(first_slot),
                                            payload, sync=True),
            op="journal.append")
        self._observe_append(start, len(payload))
        self.head_slot += nslots
        self.appends += 1
        return first_slot

    def _observe_append(self, start_ns: int, nbytes: int) -> None:
        registry = telemetry.registry()
        # A span (feeding the same-name histogram) so journal appends
        # issued inside a traced operation land in its causal tree.
        registry.record_span("journal.append", start_ns,
                             self.store.clock.now(), jid=self.jid)
        registry.counter("journal.bytes_appended",
                         jid=self.jid).add(nbytes)

    def append_synthetic(self, nbytes: int, seed: int = 0) -> int:
        """Benchmark path: append ``nbytes`` of synthetic payload.

        Identical device accounting to :meth:`append` without
        materializing the bytes (Table 5 journals a 1 GiB region).
        """
        from ..hw.nvme import synthetic_payload

        if nbytes <= 0:
            raise InvalidArgument("cannot append an empty record")
        framed = nbytes + 256  # envelope overhead, charged like append
        nslots = (framed + SLOT_SIZE - 1) // SLOT_SIZE
        if self.head_slot + nslots > self.nslots:
            raise NoSpace(f"journal {self.jid} full")
        first_slot = self.head_slot
        start = self.store.clock.now()
        self.store.retry.run(
            lambda: self.store.device.write(self._slot_offset(first_slot),
                                            synthetic_payload(seed, framed),
                                            sync=True),
            op="journal.append")
        self._observe_append(start, framed)
        self.head_slot += nslots
        self.appends += 1
        return first_slot

    def truncate(self) -> None:
        """Reset the journal (one sync header write bumping the epoch)."""
        self.epoch += 1
        self.head_slot = 1
        self._write_header()

    # -- recovery ----------------------------------------------------------------

    def replay(self) -> List[bytes]:
        """Read back every record of the current epoch, in order.

        The header slot is authoritative for the epoch — a truncate
        may have happened after the last superblock write.
        """
        if self.store.device.has_extent(self.base):
            header = records.decode(self.store.device.read(self.base),
                                    records.REC_JOURNAL)
            self.epoch = header["epoch"]
        out: List[bytes] = []
        slot = 1
        while slot < self.nslots:
            offset = self._slot_offset(slot)
            if not self.store.device.has_extent(offset):
                break
            try:
                raw = self.store.device.read(offset)
                if not isinstance(raw, bytes):
                    break
                body = records.decode(raw, records.REC_JOURNAL)
            except (CorruptRecord, StoreError):
                break
            if body.get("header") or body["epoch"] != self.epoch:
                break
            out.append(body["data"])
            slot += (len(raw) + SLOT_SIZE - 1) // SLOT_SIZE
        self.head_slot = slot
        return out

    def encode_meta(self) -> dict:
        """Directory entry persisted in the superblock."""
        return {"jid": self.jid, "base": self.base,
                "capacity": self.capacity, "epoch": self.epoch}

    @classmethod
    def decode_meta(cls, store: Any, raw: dict) -> "Journal":
        """Rebuild a journal handle from its directory entry."""
        journal = cls(store, raw["jid"], raw["base"], raw["capacity"],
                      raw["epoch"])
        return journal

    def __repr__(self) -> str:
        return (f"Journal(jid={self.jid}, epoch={self.epoch}, "
                f"slot={self.head_slot}/{self.nslots})")
