"""sls send/recv migration streams and sls dump coredumps."""

import pytest

from repro import Machine, load_aurora
from repro.core import migration
from repro.core.coredump import dump_process, parse_core, NT_PRSTATUS
from repro.errors import RestoreError
from repro.units import PAGE_SIZE


def make_app(machine, sls, name="app"):
    proc = machine.kernel.spawn(name)
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, f"{name} memory".encode())
    group = sls.attach(proc, name=name, periodic=False)
    return proc, group, addr


def test_send_recv_between_machines():
    src = Machine()
    src_sls = load_aurora(src)
    proc, group, addr = make_app(src, src_sls)
    src_sls.checkpoint(group, sync=True)

    stream = migration.send_checkpoint(src_sls, group.group_id)
    assert isinstance(stream, bytes)

    dst = Machine()
    dst_sls = load_aurora(dst)
    ckpt_id = migration.recv_checkpoint(dst_sls, stream)
    result = dst_sls.restore(group.group_id, ckpt_id=ckpt_id,
                             periodic=False)
    assert result.root.vmspace.read(addr, 10) == b"app memory"


def test_incremental_stream_smaller_than_full():
    src = Machine()
    src_sls = load_aurora(src)
    proc, group, addr = make_app(src, src_sls)
    proc.vmspace.fill(addr, 16, seed=0)
    src_sls.checkpoint(group, sync=True)
    base_id = group.last_complete_id
    full_stream = migration.send_checkpoint(src_sls, group.group_id)

    proc.vmspace.touch(addr, 1, seed=99)
    src_sls.checkpoint(group, sync=True)
    delta_stream = migration.send_checkpoint(src_sls, group.group_id,
                                             since=base_id)
    assert len(delta_stream) < len(full_stream)


def test_live_migrate_moves_the_application():
    src = Machine()
    src_sls = load_aurora(src)
    dst = Machine()
    dst_sls = load_aurora(dst)
    proc, group, addr = make_app(src, src_sls, name="traveler")
    gid = group.group_id

    result = migration.migrate(src_sls, dst_sls, group)
    assert result.root.vmspace.read(addr, 15) == b"traveler memory"
    # Source incarnation is gone; destination owns the group.
    assert proc.state == "zombie"
    assert gid in dst_sls.groups
    assert gid not in src_sls.groups


def test_recv_rejects_garbage():
    dst = Machine()
    dst_sls = load_aurora(dst)
    from repro import serde
    with pytest.raises(RestoreError):
        migration.recv_checkpoint(dst_sls, serde.dumps({"magic": "nope"}))


# -- coredumps ----------------------------------------------------------------------


def test_coredump_structure():
    machine = Machine()
    kernel = machine.kernel
    proc = kernel.spawn("dumpme")
    proc.add_thread()
    addr = proc.vmspace.mmap(2 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"core contents")
    proc.main_thread.cpu_state.regs["rip"] = 0x401000

    core = dump_process(proc)
    parsed = parse_core(core)
    assert len(parsed["notes"]) == 2  # one PRSTATUS per thread
    assert all(n["type"] == NT_PRSTATUS for n in parsed["notes"])
    segments = {s["vaddr"]: s["data"] for s in parsed["segments"]}
    assert segments[addr].startswith(b"core contents")
    assert len(segments[addr]) == 2 * PAGE_SIZE


def test_coredump_skips_device_mappings():
    machine = Machine()
    proc = machine.kernel.spawn("p")
    machine.kernel.map_hpet(proc)
    heap = proc.vmspace.mmap(PAGE_SIZE, name="heap")
    proc.vmspace.write(heap, b"x")
    parsed = parse_core(dump_process(proc))
    assert len(parsed["segments"]) == 1


def test_parse_rejects_non_elf():
    with pytest.raises(RestoreError):
        parse_core(b"not an elf at all")
