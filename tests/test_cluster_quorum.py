"""Property-based tests of the quorum cluster's durability math.

Three invariants, each verified over randomized states and membership
(deep variants — ≥200 examples each — run under ``-m slow``):

* **Read-quorum sufficiency** — after full replication, *any* subset
  of at least read-quorum nodes reconstructs byte-identical
  application state (W + R > N: every read quorum intersects every
  write quorum).
* **Write-quorum necessity** — a partition with fewer than
  write-quorum reachable nodes never advances the durability
  watermark: the new checkpoint is not acknowledged, and recovery
  yields exactly the prior durable state, never a partial V2.
* **Repair convergence** — after losing up to two complete copies
  (node media wipes, within the f=2 tolerance of a 3/5 quorum),
  segment repair reconverges to full replication with every segment
  checksum intact.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, load_aurora
from repro.core.cluster import SLSCluster
from repro.units import PAGE_SIZE

NODES = 5
AZS = 3
WRITE_QUORUM = NODES // 2 + 1      # 3
READ_QUORUM = NODES - WRITE_QUORUM + 1  # 3
SEGMENT_BYTES = 512

payloads = st.binary(min_size=1, max_size=96)

subsets = st.sets(st.integers(0, NODES - 1),
                  min_size=READ_QUORUM, max_size=NODES)

survivor_sets = st.sets(st.integers(0, NODES - 1),
                        min_size=0, max_size=WRITE_QUORUM - 1)

wipe_sets = st.sets(st.integers(0, NODES - 1), min_size=1, max_size=2)


class Fixture:
    """One primary with an attached service and its 5-node cluster."""

    def __init__(self):
        self.machine = Machine()
        self.sls = load_aurora(self.machine)
        self.proc = self.machine.kernel.spawn("svc")
        self.addr = self.proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
        self.group = self.sls.attach(self.proc, name="svc",
                                     periodic=False)
        self.cluster = SLSCluster(self.sls, self.group, nodes=NODES,
                                  azs=AZS, segment_bytes=SEGMENT_BYTES)

    def commit(self, payload: bytes, name: str) -> int:
        """Write ``payload`` (stamped so V1 != V2 always) and take a
        sync checkpoint; returns the primary checkpoint id."""
        self.proc.vmspace.write(self.addr, payload)
        self.proc.vmspace.write(self.addr + 3 * PAGE_SIZE,
                                name.encode() + b":" + payload)
        result = self.sls.checkpoint(self.group, name=name, sync=True)
        return int(result.info.ckpt_id)

    def read(self, root, length: int) -> bytes:
        return (root.vmspace.read(self.addr, length)
                + b"|" + root.vmspace.read(self.addr + 3 * PAGE_SIZE,
                                           length + 4))


def _check_read_quorum_sufficiency(subset, v1, v2):
    fx = Fixture()
    fx.commit(v1, name="v1")
    newest = fx.commit(v2, name="v2")
    assert fx.cluster.pump() == newest
    expected = fx.read(fx.proc, len(v2))
    fx.machine.crash()
    recovery = fx.cluster.recover(node_ids=sorted(subset))
    assert recovery.durable == newest
    assert fx.read(recovery.result.root, len(v2)) == expected


@settings(max_examples=20, deadline=None)
@given(subset=subsets, v1=payloads, v2=payloads)
def test_read_quorum_subsets_reconstruct_identical_state(subset, v1, v2):
    """(a) Any ≥R-node subset recovers byte-identical state."""
    _check_read_quorum_sufficiency(subset, v1, v2)


@pytest.mark.slow
@settings(max_examples=200, deadline=None)
@given(subset=subsets, v1=payloads, v2=payloads)
def test_read_quorum_subsets_reconstruct_identical_state_deep(
        subset, v1, v2):
    _check_read_quorum_sufficiency(subset, v1, v2)


def _check_write_quorum_necessity(survivors, v1, v2):
    fx = Fixture()
    acked = fx.commit(v1, name="v1")
    assert fx.cluster.pump() == acked
    durable_state = fx.read(fx.proc, len(v1))
    # Partition: fewer than write-quorum nodes stay reachable.
    for node_id in range(NODES):
        if node_id not in survivors:
            fx.cluster.node_down(node_id, reason="partition")
    fx.commit(v2, name="v2")
    assert fx.cluster.pump() == acked, \
        "durability advanced without a write quorum"
    # The primary dies; the partition heals (every node reboots).
    fx.machine.crash()
    recovery = fx.cluster.recover()
    assert recovery.durable == acked
    assert fx.read(recovery.result.root, len(v1)) == durable_state
    # The unacknowledged checkpoint is gone everywhere, not lingering
    # on the minority that briefly held it.
    for node in fx.cluster.nodes:
        assert node.applied_max == acked


@settings(max_examples=20, deadline=None)
@given(survivors=survivor_sets, v1=payloads, v2=payloads)
def test_sub_write_quorum_partition_never_advances_durability(
        survivors, v1, v2):
    """(b) A <W partition acknowledges nothing; recovery yields the
    prior durable state exactly."""
    _check_write_quorum_necessity(survivors, v1, v2)


@pytest.mark.slow
@settings(max_examples=200, deadline=None)
@given(survivors=survivor_sets, v1=payloads, v2=payloads)
def test_sub_write_quorum_partition_never_advances_durability_deep(
        survivors, v1, v2):
    _check_write_quorum_necessity(survivors, v1, v2)


def _check_repair_convergence(wiped, v1, v2):
    fx = Fixture()
    fx.commit(v1, name="v1")
    newest = fx.commit(v2, name="v2")
    assert fx.cluster.pump() == newest
    expected = fx.read(fx.proc, len(v2))
    # Lose k<=2 complete copies: replacement nodes come up blank.
    for node_id in wiped:
        fx.cluster.nodes[node_id].wipe()
        fx.cluster.links[node_id].dst_sls = fx.cluster.nodes[node_id].sls
        for acks in fx.cluster.acks.values():
            acks.discard(node_id)
    report = fx.cluster.repair()
    assert report["checkpoints"] == 2 * len(wiped)
    assert report["segments"] > 0
    # Converged: every node holds every checkpoint, and every cached
    # segment reassembles with its checksum intact (verify() raises
    # SegmentCorrupt otherwise).
    audit = fx.cluster.verify()
    assert audit["fully_replicated"], audit
    assert audit["segments_verified"] > 0
    # The rebuilt copies are real: recovery restricted to the wiped
    # nodes alone reconstructs the durable state (k<=2 wipes leave
    # >=1 of them... only when enough survive; use them plus one).
    fx.machine.crash()
    donors = sorted(wiped) + [n for n in range(NODES)
                              if n not in wiped][:READ_QUORUM - len(wiped)]
    recovery = fx.cluster.recover(node_ids=sorted(set(donors)))
    assert recovery.durable == newest
    assert fx.read(recovery.result.root, len(v2)) == expected


@settings(max_examples=20, deadline=None)
@given(wiped=wipe_sets, v1=payloads, v2=payloads)
def test_repair_converges_after_copy_losses(wiped, v1, v2):
    """(c) Repair after k<=2 media losses reconverges to full
    replication with checksums intact."""
    _check_repair_convergence(wiped, v1, v2)


@pytest.mark.slow
@settings(max_examples=200, deadline=None)
@given(wiped=wipe_sets, v1=payloads, v2=payloads)
def test_repair_converges_after_copy_losses_deep(wiped, v1, v2):
    _check_repair_convergence(wiped, v1, v2)
