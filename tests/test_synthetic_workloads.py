"""Synthetic app profiles (Table 6) and the workload generators."""

import pytest

from repro import Machine, load_aurora
from repro.apps.synthetic import PROFILES, SyntheticApp
from repro.machine import Machine as _Machine
from repro.slsfs import AuroraFSModel, FFSModel, ZFSModel
from repro.units import KiB, MiB, MSEC, PAGE_SIZE, pages_of
from repro.workloads.filebench import FileBench
from repro.workloads.prefix_dist import OP_GET, OP_PUT, PrefixDistWorkload


# -- synthetic profiles ------------------------------------------------------------


def test_profiles_cover_table6_apps():
    assert set(PROFILES) == {"firefox", "mosh", "pillow", "tomcat", "vim"}


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_profile_builds_to_spec(name):
    machine = Machine()
    profile = PROFILES[name]
    app = SyntheticApp(machine.kernel, profile)
    assert len(app.procs) == profile.nprocs
    total_threads = sum(len(p.threads) for p in app.procs)
    assert total_threads == profile.nthreads
    resident = app.resident_pages()
    expected = pages_of(profile.resident_bytes)
    assert abs(resident - expected) / expected < 0.05


def test_firefox_is_multiprocess_with_shm():
    machine = Machine()
    app = SyntheticApp(machine.kernel, PROFILES["firefox"])
    assert len(app.procs) == 4
    assert machine.kernel.posix_shm.names()  # browser shared memory


def test_idle_tick_dirties_a_small_fraction():
    machine = Machine()
    app = SyntheticApp(machine.kernel, PROFILES["vim"])
    dirtied = app.idle_tick(seed=1)
    assert 0 < dirtied < pages_of(PROFILES["vim"].resident_bytes) // 10


def test_synthetic_app_checkpoints_and_restores():
    machine = Machine()
    sls = load_aurora(machine)
    app = SyntheticApp(machine.kernel, PROFILES["mosh"])
    group = sls.attach(app.root, periodic=False)
    sls.checkpoint(group, sync=True)
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    assert len(result.processes) == 1
    assert len(result.root.threads) == PROFILES["mosh"].nthreads


def test_tomcat_stop_time_exceeds_vim():
    """OS complexity drives stop time (Table 6's point)."""
    def stop_time(name):
        machine = Machine()
        sls = load_aurora(machine)
        app = SyntheticApp(machine.kernel, PROFILES[name])
        group = sls.attach(app.root, periodic=False)
        sls.checkpoint(group, sync=True)
        app.idle_tick(seed=1)
        return sls.checkpoint(group, sync=True).stop_ns

    assert stop_time("tomcat") > 2 * stop_time("vim")


# -- prefix_dist -------------------------------------------------------------------------


def test_prefix_dist_deterministic():
    a = list(PrefixDistWorkload(seed=1).ops(100))
    b = list(PrefixDistWorkload(seed=1).ops(100))
    assert a == b
    c = list(PrefixDistWorkload(seed=2).ops(100))
    assert a != c


def test_prefix_dist_mix_ratio():
    workload = PrefixDistWorkload(seed=3, get_ratio=0.7)
    ops = list(workload.ops(2000))
    gets = sum(1 for op, _k, _v in ops if op == OP_GET)
    assert 0.6 < gets / len(ops) < 0.8


def test_prefix_dist_skewed_prefixes():
    workload = PrefixDistWorkload(seed=4, nprefixes=16)
    counts = {}
    for _ in range(4000):
        prefix = workload.next_key().split(b":")[0]
        counts[prefix] = counts.get(prefix, 0) + 1
    hottest = max(counts.values())
    coldest = min(counts.values())
    assert hottest > 5 * coldest  # power-law skew


def test_prefix_dist_value_shape():
    workload = PrefixDistWorkload(seed=5, value_size=128)
    value = workload.next_value()
    assert len(value) == 128


# -- filebench ---------------------------------------------------------------------------------


def test_filebench_write_accounting():
    machine = Machine()
    fs = FFSModel(machine)
    fb = FileBench(fs)
    throughput = fb.write_throughput(64 * KiB, True, total_bytes=8 * MiB)
    assert throughput > 0
    assert fs.stats["bytes_written"] == 8 * MiB


def test_filebench_personality_op_counts():
    machine = Machine()
    fs = AuroraFSModel(machine)
    fb = FileBench(fs)
    ops_per_sec = fb.varmail(nops=2000)
    assert ops_per_sec > 0
    assert fs.stats["fsyncs"] > 200  # ~25% of the mix


def test_aurora_engine_charges_periodic_commits():
    machine = Machine()
    fs = AuroraFSModel(machine, checkpoint_period_ns=10 * MSEC)
    fb = FileBench(fs)
    fb.write_throughput(64 * KiB, True, total_bytes=64 * MiB)
    assert fs.commits > 0


def test_engines_share_device_model():
    """All engines push bytes through the same striped array."""
    for engine_cls in (ZFSModel, FFSModel, AuroraFSModel):
        machine = Machine()
        fs = engine_cls(machine)
        fb = FileBench(fs)
        fb.write_throughput(64 * KiB, True, total_bytes=4 * MiB)
        assert machine.storage.bytes_written >= 4 * MiB
