"""Stress: a complex multiprocess application through repeated crash
cycles — the closest thing to the paper's Firefox demo.

One application with multiple processes, shared memory, pipes, files
and sockets survives a sequence of crash/reboot/restore cycles, doing
real work between each, without ever losing checkpointed state or
corrupting sharing relationships.
"""

import pytest

from repro import Machine, load_aurora
from repro.core.api import AuroraAPI
from repro.kernel.fs.file import O_CREAT, O_RDWR
from repro.units import MSEC, PAGE_SIZE

CYCLES = 5


def build_app(kernel, sls):
    """A browser-shaped app: parent + 2 workers, shm, pipe, log file."""
    parent = kernel.spawn("browser")
    heap = parent.vmspace.mmap(64 * PAGE_SIZE, name="heap")
    shm_fd = kernel.shm_open(parent, "/render-buffer", 8 * PAGE_SIZE)
    shm_addr = kernel.shm_mmap(parent, shm_fd)
    log_fd = kernel.open(parent, "/browser.log", O_CREAT | O_RDWR)
    rfd, wfd = kernel.pipe(parent)
    group = sls.attach(parent, name="browser", periodic=False)
    worker_a = kernel.fork(parent, name="render")
    worker_b = kernel.fork(parent, name="network")
    return {
        "group": group, "parent": parent,
        "workers": [worker_a, worker_b],
        "heap": heap, "shm": shm_addr,
        "log_fd": log_fd, "rfd": rfd, "wfd": wfd,
    }


def do_work(kernel, app, cycle):
    parent = app["parent"]
    render, network = app["workers"]
    # Parent updates its heap state.
    parent.vmspace.write(app["heap"], f"cycle-{cycle}".encode())
    # The render worker paints into shared memory...
    render.vmspace.write(app["shm"], f"frame-{cycle}".encode())
    # ...which the parent observes (live sharing).
    assert parent.vmspace.read(app["shm"], 7) == f"frame-{cycle}"[:7].encode()
    # The network worker reports over the pipe.
    kernel.write(network, app["wfd"], f"fetched-{cycle};".encode())
    # The parent logs to the Aurora FS.
    kernel.write(parent, app["log_fd"], f"log-{cycle}\n".encode())


def test_complex_app_survives_repeated_crash_cycles():
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel
    app = build_app(kernel, sls)
    gid = app["group"].group_id

    pipe_log = ""
    for cycle in range(CYCLES):
        do_work(kernel, app, cycle)
        pipe_log += f"fetched-{cycle};"
        sls.checkpoint(app["group"], sync=True)

        machine.crash()
        machine.boot()
        sls = load_aurora(machine)
        kernel = machine.kernel
        result = sls.restore(gid, periodic=False)
        by_name = {p.name: p for p in result.processes}
        assert set(by_name) == {"browser", "render", "network"}

        parent = by_name["browser"]
        # Heap state is from this cycle's checkpoint.
        assert parent.vmspace.read(app["heap"], 7) == \
            f"cycle-{cycle}".encode()[:7]
        # Shared memory still shared between parent and render worker.
        by_name["render"].vmspace.write(app["shm"] + 64,
                                        f"post-{cycle}".encode())
        assert parent.vmspace.read(app["shm"] + 64, 6) == \
            f"post-{cycle}".encode()[:6]
        # The pipe still carries every unread report.
        # (Nothing consumed it, so the full history is buffered.)
        pipe_obj = parent.fdtable.get(app["rfd"]).fobj
        assert bytes(pipe_obj.buffer).decode() == pipe_log
        # The log file contains every line ever written.
        kernel.lseek(parent, app["log_fd"], 0)
        content = kernel.read(parent, app["log_fd"], 4096).decode()
        assert content.splitlines() == [f"log-{c}"
                                        for c in range(cycle + 1)]

        app["group"] = result.group
        app["parent"] = parent
        app["workers"] = [by_name["render"], by_name["network"]]


def test_long_periodic_run_then_restore():
    """An app under 100 Hz checkpointing for a (simulated) second,
    then a crash: at most one period of work is lost."""
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("worker")
    addr = proc.vmspace.mmap(32 * PAGE_SIZE, name="heap")
    group = sls.attach(proc)
    ticks = 0
    for _ in range(200):
        ticks += 1
        proc.vmspace.write(addr, ticks.to_bytes(4, "little"))
        machine.run_for(5 * MSEC)
    assert group.stats["checkpoints"] >= 90
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    recovered = int.from_bytes(result.root.vmspace.read(addr, 4),
                               "little")
    assert ticks - 3 <= recovered <= ticks


def test_memckpt_heavy_api_loop_with_crashes():
    """The custom-application pattern (§3): full checkpoint once, then
    continuous atomic region checkpoints; crash at arbitrary points."""
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("custom")
    region = proc.vmspace.mmap(16 * PAGE_SIZE, name="data")
    group = sls.attach(proc, periodic=False)
    api = AuroraAPI(sls, proc)
    api.sls_checkpoint(full=True, sync=True)
    gid = group.group_id

    for round_no in range(6):
        proc.vmspace.write(region, f"round-{round_no}".encode())
        api.sls_memckpt(region, 16 * PAGE_SIZE, sync=True)
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    assert result.root.vmspace.read(region, 7) == b"round-5"
