"""Shared fixtures: machines with and without Aurora loaded."""

from __future__ import annotations

import pytest

from repro import Machine, load_aurora


@pytest.fixture
def machine():
    """A plain simulated machine (no single level store loaded)."""
    return Machine()


@pytest.fixture
def kernel(machine):
    return machine.kernel


@pytest.fixture
def aurora(machine):
    """(machine, sls) with Aurora loaded and the store formatted."""
    sls = load_aurora(machine)
    return machine, sls
