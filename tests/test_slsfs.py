"""The Aurora filesystem: persistence, fsync no-op, anonymous files."""

import pytest

from repro import Machine, load_aurora
from repro.core import costs
from repro.kernel.fs.file import O_CREAT, O_RDWR
from repro.units import USEC


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    return machine, sls, proc


def _reboot_with_aurora(machine):
    machine.crash()
    machine.boot()
    return load_aurora(machine)


def test_files_survive_crash(setup):
    machine, sls, proc = setup
    kernel = machine.kernel
    fd = kernel.open(proc, "/persistent", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"do not lose me")
    sls.slsfs.checkpoint(sync=True)
    _reboot_with_aurora(machine)
    kernel2 = machine.kernel
    proc2 = kernel2.spawn("reader")
    fd2 = kernel2.open(proc2, "/persistent", O_RDWR)
    assert kernel2.read(proc2, fd2, 14) == b"do not lose me"


def test_directories_survive_crash(setup):
    machine, sls, proc = setup
    kernel = machine.kernel
    kernel.mkdir(proc, "/a")
    kernel.mkdir(proc, "/a/b")
    kernel.open(proc, "/a/b/c", O_CREAT)
    sls.slsfs.checkpoint(sync=True)
    _reboot_with_aurora(machine)
    assert machine.kernel.vfs.listdir("/a/b") == ["c"]


def test_uncheckpointed_writes_lost_on_crash(setup):
    machine, sls, proc = setup
    kernel = machine.kernel
    fd = kernel.open(proc, "/f", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"v1")
    sls.slsfs.checkpoint(sync=True)
    kernel.write(proc, fd, b"v2")  # never checkpointed
    _reboot_with_aurora(machine)
    proc2 = machine.kernel.spawn("r")
    fd2 = machine.kernel.open(proc2, "/f", O_RDWR)
    assert machine.kernel.read(proc2, fd2, 2) == b"v1"


def test_fsync_is_a_noop(setup):
    """Checkpoint consistency: fsync costs sub-microsecond (§9.1)."""
    machine, sls, proc = setup
    kernel = machine.kernel
    fd = kernel.open(proc, "/f", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"data")
    before = machine.clock.now()
    kernel.fsync(proc, fd)
    elapsed = machine.clock.now() - before
    assert elapsed <= costs.SLSFS_FSYNC + costs.SYSCALL_OVERHEAD


def test_anonymous_file_survives_crash_via_hidden_link_count(setup):
    """The paper's §5.2 edge case: an open-but-unlinked file must be
    restorable after a crash."""
    machine, sls, proc = setup
    kernel = machine.kernel
    fd = kernel.open(proc, "/scratch", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"anon state")
    group = sls.attach(proc, periodic=False)
    kernel.unlink(proc, "/scratch")
    sls.checkpoint(group, sync=True)
    gid = group.group_id

    sls2 = _reboot_with_aurora(machine)
    result = sls2.restore(gid)
    proc2 = result.root
    machine.kernel.lseek(proc2, fd, 0)
    assert machine.kernel.read(proc2, fd, 10) == b"anon state"
    # And it is still invisible in the namespace.
    assert not machine.kernel.vfs.exists("/scratch")


def test_incremental_fs_checkpoints_only_flush_dirty(setup):
    machine, sls, proc = setup
    kernel = machine.kernel
    fd = kernel.open(proc, "/big", O_CREAT | O_RDWR)
    vnode = proc.fdtable.get(fd).vnode
    vnode.write_synthetic(0, 64 * 4096, seed=1)
    info1 = sls.slsfs.checkpoint(sync=True)
    # Touch one page only.
    vnode.write_synthetic(0, 4096, seed=2)
    info2 = sls.slsfs.checkpoint(sync=True)
    assert info2.data_bytes < info1.data_bytes


def test_file_creation_charges_global_lock(setup):
    machine, sls, proc = setup
    before = machine.clock.now()
    machine.kernel.open(proc, "/newfile", O_CREAT)
    elapsed = machine.clock.now() - before
    assert elapsed >= costs.SLSFS_CREATE_GLOBAL_LOCK
