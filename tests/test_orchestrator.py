"""The SLS orchestrator: periodic checkpoints, suspend/resume, ps."""

import pytest

from repro import Machine, load_aurora
from repro.errors import AlreadyAttached, NoSuchCheckpoint, SLSError
from repro.units import MSEC, PAGE_SIZE, USEC


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    return machine, sls, proc


def test_attach_includes_process_tree(setup):
    machine, sls, proc = setup
    child = machine.kernel.fork(proc)
    group = sls.attach(proc, periodic=False)
    assert proc in group.processes
    assert child in group.processes


def test_double_attach_rejected(setup):
    machine, sls, proc = setup
    sls.attach(proc, periodic=False)
    with pytest.raises(AlreadyAttached):
        sls.attach(proc, periodic=False)


def test_fork_after_attach_joins_group(setup):
    machine, sls, proc = setup
    group = sls.attach(proc, periodic=False)
    child = machine.kernel.fork(proc)
    assert child.sls_group is group


def test_periodic_checkpointing_at_default_100hz(setup):
    """§3: the default frequency is 100x per second."""
    machine, sls, proc = setup
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    group = sls.attach(proc)
    for tick in range(10):
        proc.vmspace.touch(addr, 2, seed=tick)
        machine.run_for(10 * MSEC)
    assert 8 <= group.stats["checkpoints"] <= 11
    assert group.period_ns == 10 * MSEC


def test_custom_period(setup):
    machine, sls, proc = setup
    group = sls.attach(proc, period_ns=50 * MSEC)
    machine.run_for(500 * MSEC)
    assert 8 <= group.stats["checkpoints"] <= 11


def test_checkpoint_skipped_while_flush_in_flight(setup):
    machine, sls, proc = setup
    group = sls.attach(proc, periodic=False)
    addr = proc.vmspace.mmap(1024 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 1024, seed=0)
    sls.checkpoint(group)  # async: flush in flight
    assert group.flush_in_progress
    with pytest.raises(SLSError):
        sls.checkpoint(group)
    machine.loop.drain()
    assert not group.flush_in_progress
    sls.checkpoint(group)  # fine now


def test_detach_stops_persistence(setup):
    machine, sls, proc = setup
    group = sls.attach(proc)
    machine.run_for(50 * MSEC)
    count = group.stats["checkpoints"]
    sls.detach(group)
    machine.run_for(100 * MSEC)
    assert group.stats["checkpoints"] == count
    assert proc.sls_group is None


def test_member_exit_stops_serialization(setup):
    machine, sls, proc = setup
    group = sls.attach(proc, periodic=False)
    child = machine.kernel.fork(proc)
    sls.checkpoint(group, sync=True)
    child.exit(0)
    res = sls.checkpoint(group, sync=True)
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(group.group_id)
    assert len(result.processes) == 1


def test_suspend_and_resume(setup):
    machine, sls, proc = setup
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"suspended state")
    group = sls.attach(proc, periodic=False)
    gid = group.group_id
    sls.suspend(group)
    assert proc.state == "zombie"
    assert gid not in sls.groups

    result = sls.resume(gid)
    assert result.root.vmspace.read(addr, 15) == b"suspended state"


def test_ps_lists_applications(setup):
    machine, sls, proc = setup
    group = sls.attach(proc, name="server", periodic=False)
    sls.checkpoint(group, sync=True)
    sls.checkpoint(group, sync=True)
    rows = sls.ps()
    assert len(rows) == 1
    assert rows[0]["name"] == "server"
    assert rows[0]["checkpoints"] == 2
    assert rows[0]["attached"]


def test_restore_unknown_group_fails(setup):
    machine, sls, proc = setup
    with pytest.raises(NoSuchCheckpoint):
        sls.restore(999)


def test_mem_checkpoint_flushes_nothing(setup):
    machine, sls, proc = setup
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    proc.vmspace.touch(addr, 16, seed=1)
    group = sls.attach(proc, periodic=False)
    written_before = machine.storage.bytes_written
    res = sls.checkpoint(group, mode="mem")
    assert res.info is None
    assert res.stop_ns > 0
    assert machine.storage.bytes_written == written_before


def test_stop_time_excludes_flush(setup):
    """Continuous checkpointing: the stop time is orders of magnitude
    below the IO time of the flush it kicks off."""
    machine, sls, proc = setup
    addr = proc.vmspace.mmap(4096 * PAGE_SIZE, name="heap")  # 16 MiB
    proc.vmspace.fill(addr, 4096, seed=0)
    group = sls.attach(proc, periodic=False)
    res = sls.checkpoint(group)
    t_after_stop = machine.clock.now()
    machine.loop.drain()
    flush_time = machine.clock.now() - t_after_stop
    assert res.stop_ns < flush_time
    assert res.stop_ns < 1 * MSEC


def test_restored_group_keeps_checkpointing(setup):
    machine, sls, proc = setup
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=False)
    gid = group.group_id
    sls.checkpoint(group, sync=True)
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid)  # periodic by default
    result.root.vmspace.write(addr, b"new work")
    machine.run_for(50 * MSEC)
    assert result.group.stats["checkpoints"] >= 3


def test_consistency_group_atomicity(setup):
    """Processes in one group always restore to the same instant: a
    message passed between them is never seen by one and unsent by
    the other."""
    machine, sls, proc = setup
    kernel = machine.kernel
    rfd, wfd = kernel.pipe(proc)
    group = sls.attach(proc, periodic=False)
    child = kernel.fork(proc)

    kernel.write(proc, wfd, b"msg-1")
    sls.checkpoint(group, sync=True)
    # After the checkpoint: child consumes the message and replies.
    assert kernel.read(child, rfd, 5) == b"msg-1"
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    by_name = {p.name: p for p in result.processes}
    # The whole group rolled back: the message is unconsumed.
    assert machine.kernel.read(by_name["app-child"], rfd, 5) == b"msg-1"
