"""Property tests for the extent allocator.

The never-overwrite guarantee of the store rests on two allocator
invariants, checked here over hypothesis-generated op sequences:

* **No double allocation** — live extents are pairwise disjoint,
  4 KiB-aligned, and inside ``[reserved, capacity)``.
* **Exact accounting** — ``free_bytes() + used_bytes()`` equals
  ``capacity - reserved`` after every operation: no byte is ever
  leaked or counted twice, through any interleaving of allocs, frees,
  coalescing and free-list reuse.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import InvalidArgument, StoreFull
from repro.objstore.blockalloc import ALIGN, ExtentAllocator, _align_up
from repro.units import STRIPE_SIZE

CAPACITY = 64 * STRIPE_SIZE
RESERVED = 2 * STRIPE_SIZE

# An op is ("alloc", nbytes) or ("free", pick) where pick indexes the
# live set at execution time — keeps sequences shrinkable.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"),
                  st.integers(min_value=1, max_value=3 * STRIPE_SIZE)),
        st.tuples(st.just("free"),
                  st.integers(min_value=0, max_value=2 ** 16)),
    ),
    max_size=80)


def _run(ops):
    """Execute ops against the allocator and a shadow model of the
    live set; verify both invariants after every step."""
    alloc = ExtentAllocator(CAPACITY, reserved=RESERVED)
    live = {}  # offset -> aligned length
    for op, arg in ops:
        if op == "alloc":
            try:
                offset = alloc.alloc(arg)
            except StoreFull:
                continue
            length = _align_up(arg)
            # In bounds and aligned.
            assert offset % ALIGN == 0
            assert RESERVED <= offset
            assert offset + length <= CAPACITY
            # Disjoint from every live extent: no double allocation.
            for other_off, other_len in live.items():
                assert offset + length <= other_off or \
                    other_off + other_len <= offset, \
                    f"extent [{offset},{offset + length}) overlaps " \
                    f"live [{other_off},{other_off + other_len})"
            live[offset] = length
        else:
            if not live:
                continue
            offset = sorted(live)[arg % len(live)]
            length = live.pop(offset)
            alloc.free(offset, length)
        # Exact free-space accounting, every step.
        assert alloc.free_bytes() + alloc.used_bytes() == \
            CAPACITY - RESERVED
        assert alloc.used_bytes() == sum(live.values())
    return alloc, live


@settings(max_examples=60, deadline=None)
@given(OPS)
def test_no_double_allocation_and_exact_accounting(ops):
    _run(ops)


@settings(max_examples=40, deadline=None)
@given(OPS)
def test_free_everything_restores_full_capacity(ops):
    alloc, live = _run(ops)
    for offset, length in sorted(live.items()):
        alloc.free(offset, length)
    assert alloc.used_bytes() == 0
    assert alloc.free_bytes() == CAPACITY - RESERVED


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=STRIPE_SIZE),
                min_size=1, max_size=40))
def test_freed_space_is_reused_not_leaked(sizes):
    """Alloc-free-alloc of the same sizes never advances the bump
    cursor the second time: the free list satisfies the repeat."""
    alloc = ExtentAllocator(CAPACITY, reserved=RESERVED)
    extents = [(alloc.alloc(size), size) for size in sizes]
    for offset, size in extents:
        alloc.free(offset, size)
    cursor = alloc.cursor
    for size in sizes:
        alloc.alloc(size)
    assert alloc.cursor == cursor


def test_bad_arguments_rejected():
    with pytest.raises(InvalidArgument):
        ExtentAllocator(STRIPE_SIZE, reserved=2 * STRIPE_SIZE)
    alloc = ExtentAllocator(CAPACITY, reserved=RESERVED)
    with pytest.raises(InvalidArgument):
        alloc.alloc(0)


def test_exhaustion_is_exact():
    """The allocator hands out every last aligned byte, then StoreFull."""
    alloc = ExtentAllocator(CAPACITY, reserved=RESERVED)
    count = (CAPACITY - RESERVED) // ALIGN
    for _ in range(count):
        alloc.alloc(ALIGN)
    assert alloc.free_bytes() == 0
    with pytest.raises(StoreFull):
        alloc.alloc(1)
