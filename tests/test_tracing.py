"""Causal checkpoint traces: tree structure, determinism, zero
simulated-clock cost, and the Chrome trace_event export.

Covers the ISSUE acceptance criteria: a 200-checkpoint 100 Hz run
exports a schema-valid Chrome trace in which >= 95% of every
checkpoint's duration is covered by its stage spans; tracing enabled
vs disabled produces identical checkpoint timings; identical runs
produce identical trace trees.
"""

import json

import pytest

from repro import Machine, load_aurora
from repro.core import telemetry, tracing
from repro.core.telemetry import TelemetryRegistry
from repro.core.pipeline import STAGE_ORDER
from repro.units import MSEC, PAGE_SIZE

PERIOD_NS = 10 * MSEC  # 100 Hz


@pytest.fixture(autouse=True)
def fresh_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()  # also restores enabled=True after disable tests


def _run_checkpoints(count, pages=4):
    """A fresh machine running ``count`` synchronous checkpoints on a
    100 Hz cadence, dirtying ``pages`` pages before each."""
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=False)
    results = []
    for i in range(count):
        proc.vmspace.fill(addr, pages, seed=i)
        machine.run_for(PERIOD_NS)
        results.append(sls.checkpoint(group, sync=True))
    return machine, sls, group, results


class TickClock:
    """A hand-cranked clock for building synthetic traces."""

    def __init__(self):
        self.t = 0

    def now(self):
        return self.t


# -- trace tree structure ------------------------------------------------------------


def test_checkpoint_trace_is_a_causal_tree():
    machine, sls, group, results = _run_checkpoints(1, pages=8)
    traces = tracing.tracer().traces(tracing.CHECKPOINT,
                                     group=group.group_id)
    assert len(traces) == 1
    trace = traces[0]
    assert trace.complete
    assert trace.error is None
    root = trace.root
    assert root is not None and root.name == tracing.CHECKPOINT
    # Every span belongs to this trace and has an id.
    assert all(s.trace_id == trace.trace_id for s in trace.spans)
    assert all(s.span_id is not None for s in trace.spans)
    # The root's direct children are the pipeline stages, in order.
    stages = sorted(trace.children_of(trace.root_id),
                    key=lambda s: (s.start_ns, s.span_id))
    stage_names = [s.name for s in stages if s.name.startswith("ckpt.")]
    assert stage_names == [f"ckpt.{name}" for name in STAGE_ORDER]


def test_serializer_and_device_spans_nest_under_stages():
    machine, sls, group, results = _run_checkpoints(1, pages=8)
    trace = tracing.tracer().traces(tracing.CHECKPOINT)[0]
    by_id = {s.span_id: s for s in trace.spans}
    serialize_stage = next(s for s in trace.spans
                           if s.name == "ckpt.serialize")
    obj_spans = [s for s in trace.spans if s.name.startswith("serialize.")]
    assert obj_spans, "serializer emitted no per-object-type spans"

    def ancestors(span):
        while span.parent_id is not None:
            span = by_id[span.parent_id]
            yield span

    # Object-type spans live in the serialize stage's subtree (nested
    # serializers — a process's fdtable — parent to each other).
    for span in obj_spans:
        assert serialize_stage in ancestors(span), span
    # Device IO issued by the flush is attributed to the same trace,
    # parented to whichever span was open at submission.
    io_spans = [s for s in trace.spans if s.name == "nvme.write"]
    assert io_spans, "flush produced no attributed device IO spans"
    assert all(s.parent_id in by_id for s in io_spans)
    # The store's async commit finalization lands in the trace too.
    assert any(s.name == "store.finalize" for s in trace.spans)


def test_critical_path_and_self_times_on_synthetic_trace():
    clock = TickClock()
    registry = telemetry.registry()
    with tracing.trace(clock, tracing.CHECKPOINT, group=7) as trace:
        with registry.span(clock, "stage.a"):
            clock.t = 10
        with registry.span(clock, "stage.b"):
            clock.t = 12
            with registry.span(clock, "leaf"):
                clock.t = 20
            clock.t = 30
    selfs = tracing.self_times(trace)
    spans = {s.name: s for s in trace.spans}
    assert spans["stage.a"].duration_ns == 10
    assert selfs[spans["stage.a"].span_id] == 10
    assert spans["stage.b"].duration_ns == 20
    assert selfs[spans["stage.b"].span_id] == 12  # 20 - leaf's 8
    rows = {row["name"]: row for row in tracing.critical_path(trace)}
    assert rows["stage.a"]["self_ns"] == 10
    assert rows["stage.b"]["duration_ns"] == 20
    assert rows["stage.b"]["self_ns"] == 12
    assert rows["(untraced)"]["duration_ns"] == 0
    assert tracing.child_coverage(trace) == 1.0


# -- determinism ---------------------------------------------------------------------


def _trace_signature():
    """Everything observable about the finished checkpoint traces."""
    out = []
    for trace in tracing.tracer().traces(tracing.CHECKPOINT):
        spans = sorted(
            (s.name, s.start_ns, s.end_ns, s.span_id, s.parent_id)
            for s in trace.spans)
        out.append((trace.trace_id, dict(trace.labels), trace.complete,
                    spans))
    return out


def test_identical_runs_produce_identical_trace_trees():
    _run_checkpoints(3, pages=8)
    first = _trace_signature()
    telemetry.reset()
    _run_checkpoints(3, pages=8)
    second = _trace_signature()
    assert first == second
    assert first, "signature was empty; the comparison proved nothing"


def test_tracing_has_zero_simulated_clock_cost():
    """Enabled vs disabled runs are timing-identical: same stage
    timestamps, same stop times, same final sim-clock reading."""

    def timings():
        machine, sls, group, results = _run_checkpoints(3, pages=8)
        stages = [[(t.name, t.start_ns, t.end_ns) for t in r.stages]
                  for r in results]
        return stages, [r.stop_ns for r in results], machine.clock.now()

    enabled = timings()
    assert len(tracing.tracer().traces()) > 0
    telemetry.reset()
    telemetry.set_enabled(False)
    disabled = timings()
    assert tracing.tracer().traces() == []  # nothing recorded
    assert enabled == disabled


# -- the bounded span ring ------------------------------------------------------------


def test_span_ring_eviction_counts_dropped_spans():
    registry = TelemetryRegistry(span_capacity=4)
    for i in range(10):
        registry.record_span("x", i, i + 1)
    assert len(registry.spans) == 4
    assert registry.value("sls.telemetry.spans_dropped") == 6


def test_trace_spans_survive_span_ring_eviction():
    """A trace owns its span list: evicting the global ring must not
    lose spans from a retained trace."""
    machine, sls, group, results = _run_checkpoints(1, pages=8)
    trace = tracing.tracer().traces(tracing.CHECKPOINT)[0]
    before = len(trace.spans)
    registry = telemetry.registry()
    for i in range(registry.spans.maxlen + 1):
        registry.record_span("filler", i, i + 1)
    assert registry.value("sls.telemetry.spans_dropped") > 0
    assert len(trace.spans) == before


# -- the Chrome export (200-checkpoint acceptance run) --------------------------------


def test_chrome_export_of_200_checkpoint_run_is_valid_and_covered():
    machine, sls, group, results = _run_checkpoints(200, pages=4)
    traces = tracing.tracer().traces(tracing.CHECKPOINT,
                                     group=group.group_id)
    assert len(traces) == 200
    for trace in traces:
        assert trace.complete
        assert tracing.child_coverage(trace) >= 0.95
    doc = tracing.chrome_trace(traces)
    # The document survives a JSON round trip and validates against
    # the schema (same checks as `python -m repro.core.tracing`).
    doc = json.loads(json.dumps(doc))
    tracing.validate_chrome_trace(doc)
    assert len(doc["traceEvents"]) == sum(len(t.spans) for t in traces)
    roots = [e for e in doc["traceEvents"]
             if e["name"] == tracing.CHECKPOINT]
    assert len(roots) == 200
    assert all(e["pid"] == group.group_id for e in roots)
    assert all(e["args"]["complete"] for e in roots)


def test_validate_chrome_trace_rejects_malformed_documents():
    good = {"name": "s", "ph": "X", "ts": 1.0, "dur": 2.0, "pid": 1,
            "tid": 1, "args": {"trace_id": 1, "span_id": 1,
                               "parent_id": None, "complete": True}}
    tracing.validate_chrome_trace({"traceEvents": [good]})
    bad_docs = [
        [],                                         # not an object
        {"traceEvents": {}},                        # events not a list
        {"traceEvents": [{**good, "ph": "B"}]},     # wrong phase
        {"traceEvents": [{**good, "ts": -1}]},      # negative time
        {"traceEvents": [{**good, "pid": "1"}]},    # non-int pid
        {"traceEvents": [{**good, "args": {}}]},    # missing trace ids
    ]
    for doc in bad_docs:
        with pytest.raises(ValueError):
            tracing.validate_chrome_trace(doc)


# -- metrics export -------------------------------------------------------------------


def test_metrics_exports_cover_counters_and_histograms():
    _run_checkpoints(2, pages=8)
    text = tracing.prometheus_text()
    assert "# TYPE nvme_bytes_written counter" in text
    assert "ckpt_serialize_count" in text
    assert 'quantile="0.99"' in text
    doc = json.loads(json.dumps(tracing.metrics_json()))
    names = {h["name"] for h in doc["histograms"]}
    assert {f"ckpt.{s}" for s in STAGE_ORDER} <= names
    serialize = next(h for h in doc["histograms"]
                     if h["name"] == "ckpt.serialize")
    assert serialize["count"] == 2
    # Percentiles are log2-bucket upper bounds: ordered, and never
    # below the true maximum at p99 with two samples in one bucket.
    assert serialize["p50_ns"] <= serialize["p99_ns"]
    assert serialize["sum_ns"] > 0
