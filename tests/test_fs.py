"""VFS, vnodes, descriptor sharing semantics (§5.1's fd example)."""

import pytest

from repro.errors import (BadFileDescriptor, DirectoryNotEmpty, FileExists,
                          NoSuchFile)
from repro.kernel.fs.file import O_APPEND, O_CREAT, O_RDWR, O_TRUNC
from repro.machine import Machine
from repro.units import PAGE_SIZE


@pytest.fixture
def kernel():
    return Machine().kernel


@pytest.fixture
def proc(kernel):
    return kernel.spawn("app")


def test_create_write_read(kernel, proc):
    fd = kernel.open(proc, "/f", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"hello")
    kernel.lseek(proc, fd, 0)
    assert kernel.read(proc, fd, 5) == b"hello"


def test_offset_advances(kernel, proc):
    fd = kernel.open(proc, "/f", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"abcdef")
    kernel.lseek(proc, fd, 2)
    assert kernel.read(proc, fd, 2) == b"cd"
    assert kernel.read(proc, fd, 2) == b"ef"


def test_append_mode(kernel, proc):
    fd = kernel.open(proc, "/f", O_CREAT | O_RDWR | O_APPEND)
    kernel.write(proc, fd, b"one")
    kernel.lseek(proc, fd, 0)
    kernel.write(proc, fd, b"two")  # O_APPEND: goes to the end
    kernel.lseek(proc, fd, 0)
    assert kernel.read(proc, fd, 6) == b"onetwo"


def test_trunc_resets_content(kernel, proc):
    fd = kernel.open(proc, "/f", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"content")
    kernel.close(proc, fd)
    fd = kernel.open(proc, "/f", O_RDWR | O_TRUNC)
    assert kernel.read(proc, fd, 10) == b""


def test_paths_and_directories(kernel, proc):
    kernel.mkdir(proc, "/dir")
    kernel.mkdir(proc, "/dir/sub")
    fd = kernel.open(proc, "/dir/sub/file", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"deep")
    assert kernel.vfs.listdir("/dir") == ["sub"]
    assert kernel.vfs.listdir("/dir/sub") == ["file"]


def test_open_missing_file_fails(kernel, proc):
    with pytest.raises(NoSuchFile):
        kernel.open(proc, "/missing", O_RDWR)


def test_create_existing_fails(kernel, proc):
    kernel.vfs.create("/f")
    with pytest.raises(FileExists):
        kernel.vfs.create("/f")


def test_unlink_nonempty_dir_fails(kernel, proc):
    kernel.mkdir(proc, "/d")
    kernel.open(proc, "/d/f", O_CREAT)
    with pytest.raises(DirectoryNotEmpty):
        kernel.unlink(proc, "/d")


def test_rename(kernel, proc):
    fd = kernel.open(proc, "/old", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"data")
    kernel.vfs.rename("/old", "/new")
    assert not kernel.vfs.exists("/old")
    fd2 = kernel.open(proc, "/new", O_RDWR)
    assert kernel.read(proc, fd2, 4) == b"data"


def test_namecache_hits(kernel, proc):
    kernel.open(proc, "/cached", O_CREAT)
    misses_before = kernel.vfs.namecache_misses
    kernel.vfs.namei("/cached")
    kernel.vfs.namei("/cached")
    assert kernel.vfs.namecache_misses == misses_before
    assert kernel.vfs.namecache_hits >= 2


# -- the paper's fd-sharing semantics (§5.1) -----------------------------------------


def test_fork_shares_file_offset(kernel, proc):
    """fork: one OpenFile in two tables — reads move a *shared*
    offset."""
    fd = kernel.open(proc, "/f", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"abcdefgh")
    kernel.lseek(proc, fd, 0)
    child = kernel.fork(proc)
    assert kernel.read(proc, fd, 2) == b"ab"
    assert kernel.read(child, fd, 2) == b"cd"  # continues parent's offset
    assert kernel.read(proc, fd, 2) == b"ef"


def test_separate_opens_have_independent_offsets(kernel, proc):
    """Two opens of one path: two OpenFiles, one vnode — independent
    offsets over shared data."""
    fd1 = kernel.open(proc, "/f", O_CREAT | O_RDWR)
    kernel.write(proc, fd1, b"abcdefgh")
    fd2 = kernel.open(proc, "/f", O_RDWR)
    assert kernel.read(proc, fd2, 4) == b"abcd"
    kernel.lseek(proc, fd1, 0)
    assert kernel.read(proc, fd1, 4) == b"abcd"
    assert kernel.read(proc, fd2, 4) == b"efgh"


def test_dup_shares_offset(kernel, proc):
    fd = kernel.open(proc, "/f", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"0123456789")
    kernel.lseek(proc, fd, 0)
    fd2 = kernel.dup(proc, fd)
    assert kernel.read(proc, fd, 3) == b"012"
    assert kernel.read(proc, fd2, 3) == b"345"


def test_close_invalid_fd(kernel, proc):
    with pytest.raises(BadFileDescriptor):
        kernel.close(proc, 99)


def test_anonymous_file_readable_while_open(kernel, proc):
    """Unlinked-but-open files keep working (until reboot, on a
    conventional FS)."""
    fd = kernel.open(proc, "/tmpfile", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"scratch")
    kernel.unlink(proc, "/tmpfile")
    assert not kernel.vfs.exists("/tmpfile")
    kernel.lseek(proc, fd, 0)
    assert kernel.read(proc, fd, 7) == b"scratch"


def test_memfs_loses_everything_on_crash():
    machine = Machine()
    kernel = machine.kernel
    proc = kernel.spawn("app")
    kernel.open(proc, "/doomed", O_CREAT | O_RDWR)
    machine.crash()
    kernel2 = machine.boot()
    assert not kernel2.vfs.exists("/doomed")


def test_mmap_file_shared(kernel, proc):
    fd = kernel.open(proc, "/m", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"x" * PAGE_SIZE)
    addr = kernel.mmap_file(proc, fd, PAGE_SIZE, shared=True)
    # Writes through the mapping are visible through read().
    proc.vmspace.write(addr, b"MAPPED")
    kernel.lseek(proc, fd, 0)
    assert kernel.read(proc, fd, 6) == b"MAPPED"


def test_mmap_file_private(kernel, proc):
    fd = kernel.open(proc, "/p", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"original" + b"\x00" * 100)
    addr = kernel.mmap_file(proc, fd, PAGE_SIZE, shared=False)
    proc.vmspace.write(addr, b"PRIVATE!")
    kernel.lseek(proc, fd, 0)
    assert kernel.read(proc, fd, 8) == b"original"
    assert proc.vmspace.read(addr, 8) == b"PRIVATE!"
