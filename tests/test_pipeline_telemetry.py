"""The staged checkpoint pipeline and the telemetry layer.

Covers the pipeline's stage trace (ordering, stop vs overlap
accounting, the Txn protocol), the telemetry registry primitives, the
targeted barrier wait (two groups flushing concurrently), the
periodic-tick edge cases, and suspend with an outstanding flush.
"""

import pytest

from repro import Machine, load_aurora
from repro.core import telemetry
from repro.core.pipeline import (MODE_MEM, STAGE_ORDER, STOP_STAGES,
                                 MemTxn, Txn)
from repro.errors import SLSError
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture(autouse=True)
def fresh_telemetry():
    """Group ids restart at 1 for every fresh machine, so span
    histograms would otherwise accumulate across tests."""
    telemetry.reset()
    yield


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    return machine, sls, proc


def _dirty_heap(proc, npages, seed=0):
    addr = proc.vmspace.mmap(npages * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, npages, seed=seed)
    return addr


# -- the stage trace ----------------------------------------------------------------


def test_checkpoint_runs_ordered_stages(setup):
    machine, sls, proc = setup
    _dirty_heap(proc, 16)
    group = sls.attach(proc, periodic=False)
    result = sls.checkpoint(group, sync=True)
    assert [t.name for t in result.stages] == list(STAGE_ORDER)
    # Quiesce through resume are stop-time; flush and commit overlap.
    for trace in result.stages:
        assert trace.overlap == (trace.name not in STOP_STAGES)
    assert result.stop_time_ns() == result.stop_ns
    assert result.stop_ns > 0


def test_stage_timings_match_legacy_fields(setup):
    machine, sls, proc = setup
    _dirty_heap(proc, 64)
    group = sls.attach(proc, periodic=False)
    result = sls.checkpoint(group, sync=True)
    assert result.quiesce_ns == result.stage_ns("quiesce")
    assert result.serialize_ns == result.stage_ns("serialize")
    assert result.shadow_ns == (result.stage_ns("collapse") +
                                result.stage_ns("shadow"))
    # Stop time spans exactly the stop stages.
    stop_total = sum(result.stage_ns(name) for name in STOP_STAGES)
    assert result.stop_ns == stop_total


def test_stop_time_excludes_sync_flush(setup):
    """Even a sync=True checkpoint's stop time ends at resume; the
    flush wait shows up as overlap time."""
    machine, sls, proc = setup
    _dirty_heap(proc, 4096)  # 16 MiB: a flush that takes real time
    group = sls.attach(proc, periodic=False)
    result = sls.checkpoint(group, sync=True)
    assert result.overlap_ns() > result.stop_ns


def test_stage_spans_land_in_registry(setup):
    machine, sls, proc = setup
    _dirty_heap(proc, 16)
    group = sls.attach(proc, periodic=False)
    sls.checkpoint(group, sync=True)
    sls.checkpoint(group, sync=True)
    registry = telemetry.registry()
    rows = {row["stage"]: row
            for row in registry.stage_rows(group.group_id)}
    for stage in STAGE_ORDER:
        assert rows[stage]["count"] == 2
    assert rows["quiesce"]["total_ns"] > 0
    # The raw spans are in the trace ring too.
    names = {span.name for span in registry.spans
             if span.labels.get("group") == group.group_id}
    assert {f"ckpt.{stage}" for stage in STAGE_ORDER} <= names


# -- the Txn protocol ----------------------------------------------------------------


def test_both_transactions_satisfy_txn_protocol(setup):
    machine, sls, proc = setup
    store = sls.store
    mem = MemTxn(store)
    disk = store.begin_checkpoint(1)
    assert isinstance(mem, Txn)
    assert isinstance(disk, Txn)


def test_mem_mode_result_reports_mode_and_bytes(setup):
    machine, sls, proc = setup
    _dirty_heap(proc, 16)
    group = sls.attach(proc, periodic=False)
    result = sls.checkpoint(group, mode=MODE_MEM)
    assert result.info is None
    assert "mode=mem" in repr(result)
    assert "id=-" in repr(result)
    # The Txn protocol makes staged bytes measurable without a store
    # transaction: records plus the 16 dirtied pages.
    assert result.bytes_staged > 16 * PAGE_SIZE


def test_mem_txn_staging_matches_store_txn(setup):
    machine, sls, proc = setup
    _dirty_heap(proc, 8)
    group = sls.attach(proc, periodic=False)
    mem = sls.checkpoint(group, mode=MODE_MEM)
    disk = sls.checkpoint(group, full=True, sync=True)
    # Same serialized state, so the staged sizes are comparable (the
    # disk txn re-captures the same pages via full=True).
    assert mem.bytes_staged == pytest.approx(disk.bytes_staged, rel=0.1)


# -- targeted barrier (two groups flushing concurrently) ------------------------------


def test_barrier_waits_only_for_this_groups_flush(setup):
    machine, sls, proc = setup
    proc_b = machine.kernel.spawn("other")
    _dirty_heap(proc, 64, seed=1)
    _dirty_heap(proc_b, 16384, seed=2)  # 64 MiB: a much longer flush
    group_a = sls.attach(proc, periodic=False)
    group_b = sls.attach(proc_b, periodic=False)

    sls.checkpoint(group_a)
    sls.checkpoint(group_b)
    assert group_a.flush_in_progress and group_b.flush_in_progress

    ckpt_a = sls.barrier(group_a)
    assert not group_a.flush_in_progress
    # The whole point: B's (long) flush is still in flight.
    assert group_b.flush_in_progress
    assert ckpt_a == group_a.last_complete_id

    ckpt_b = sls.barrier(group_b)
    assert not group_b.flush_in_progress
    assert ckpt_b > ckpt_a


def test_barrier_survives_periodic_timer(setup):
    """barrier() used to drain the whole event loop, which spins
    forever when a periodic checkpoint timer keeps rescheduling."""
    machine, sls, proc = setup
    _dirty_heap(proc, 4096)  # 16 MiB: flush outlives the period
    group = sls.attach(proc, period_ns=10 * MSEC)
    machine.run_for(11 * MSEC)  # one tick fired; flush still going
    assert group.flush_in_progress
    ckpt_id = sls.barrier(group)
    assert ckpt_id == group.last_complete_id
    assert not group.flush_in_progress
    # The periodic timer is still armed (barrier didn't consume it).
    assert group.timer is not None and not group.timer.cancelled


def test_sync_checkpoint_waits_out_other_checkpoint(setup):
    machine, sls, proc = setup
    _dirty_heap(proc, 256)
    group = sls.attach(proc, periodic=False)
    sls.checkpoint(group)
    assert group.flush_in_progress
    # sync=True waits for the in-flight flush instead of raising.
    result = sls.checkpoint(group, sync=True)
    assert not group.flush_in_progress
    assert result.info.complete


# -- periodic tick edge cases ---------------------------------------------------------


def test_flush_overrun_delays_next_checkpoint(setup):
    """§7: a flush outliving the period skips ticks instead of piling
    up concurrent checkpoints."""
    machine, sls, proc = setup
    _dirty_heap(proc, 16384)  # 64 MiB: flush spans many 1 ms periods
    group = sls.attach(proc, period_ns=1 * MSEC)
    machine.run_for(10 * MSEC)
    # Without the overrun guard this would be ~10 checkpoints (or an
    # SLSError mid-run); with it, the first flush gates the rest.
    assert group.stats["checkpoints"] <= 2
    # Let the in-flight flush land (targeted: draining the loop with a
    # periodic timer armed would respawn ticks forever).
    sls.barrier(group)


def test_tick_after_detach_is_inert(setup):
    machine, sls, proc = setup
    _dirty_heap(proc, 4)
    group = sls.attach(proc, period_ns=5 * MSEC)
    machine.run_for(12 * MSEC)
    count = group.stats["checkpoints"]
    assert count >= 2
    sls.detach(group)
    assert group.timer is None  # timer cancelled at detach
    machine.run_for(50 * MSEC)
    assert group.stats["checkpoints"] == count
    # Nothing rescheduled: the loop goes idle.
    machine.loop.drain()
    assert machine.loop.next_deadline() is None


def test_tick_while_suspended_cancels_the_chain(setup):
    machine, sls, proc = setup
    _dirty_heap(proc, 4)
    group = sls.attach(proc, period_ns=5 * MSEC)
    group.suspended = True
    machine.run_for(30 * MSEC)
    assert group.stats["checkpoints"] == 0
    # The tick observed `suspended` and did not reschedule itself.
    machine.loop.drain()
    assert machine.loop.next_deadline() is None


# -- suspend with an outstanding flush ------------------------------------------------


def test_suspend_with_periodic_flush_outstanding(setup):
    machine, sls, proc = setup
    addr = _dirty_heap(proc, 4096)  # 16 MiB
    proc.vmspace.write(addr, b"suspend me")
    group = sls.attach(proc, period_ns=10 * MSEC)
    gid = group.group_id
    machine.run_for(11 * MSEC)  # periodic flush now in flight
    assert group.flush_in_progress

    ckpt_id = sls.suspend(group)
    assert not group.flush_in_progress
    assert proc.state == "zombie"
    assert gid not in sls.groups

    result = sls.resume(gid)
    assert result.ckpt_id == ckpt_id
    assert result.root.vmspace.read(addr, 10) == b"suspend me"


# -- telemetry primitives -------------------------------------------------------------


def test_counter_and_value_aggregation():
    registry = telemetry.TelemetryRegistry()
    registry.counter("io.bytes", device="a").add(10)
    registry.counter("io.bytes", device="b").add(32)
    registry.counter("io.other", device="a").add(99)
    assert registry.value("io.bytes") == 42
    assert registry.value("io.bytes", device="b") == 32
    assert registry.value("io.missing") == 0


def test_histogram_stats_and_percentile():
    registry = telemetry.TelemetryRegistry()
    histogram = registry.histogram("lat")
    for value in (1, 2, 4, 100, 1000):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.min == 1
    assert histogram.max == 1000
    assert histogram.mean == pytest.approx(221.4)
    assert histogram.percentile(50) <= 100
    assert histogram.percentile(100) >= 1000 // 2  # bucket upper bound


def test_span_feeds_same_name_histogram():
    registry = telemetry.TelemetryRegistry()
    registry.record_span("phase", 100, 400, group=7)
    registry.record_span("phase", 400, 600, group=7)
    histogram = registry.histogram("phase", group=7)
    assert histogram.count == 2
    assert histogram.total == 500
    assert len(registry.spans) == 2


def test_stats_view_behaves_like_a_dict():
    view = telemetry.StatsView("test.component", keys=("hits", "misses"))
    assert view["hits"] == 0
    view["hits"] += 3
    view["misses"] = 7
    assert view["hits"] == 3
    assert dict(view.items()) == {"hits": 3, "misses": 7}
    assert sorted(view) == ["hits", "misses"]
    assert "hits" in view and "unknown" not in view
    assert view.get("unknown", 5) == 5
    assert len(view) == 2


def test_stats_view_instances_do_not_collide():
    one = telemetry.StatsView("test.collide", keys=("n",))
    two = telemetry.StatsView("test.collide", keys=("n",))
    one["n"] += 5
    assert two["n"] == 0
    # But the registry can still aggregate across instances.
    assert telemetry.registry().value("test.collide.n") == 5


def test_group_stats_are_registry_backed(setup):
    machine, sls, proc = setup
    _dirty_heap(proc, 8)
    group = sls.attach(proc, periodic=False)
    sls.checkpoint(group, sync=True)
    assert group.stats["checkpoints"] == 1
    assert telemetry.registry().value("sls.group.checkpoints",
                                      group=group.group_id) >= 1


def test_sls_stat_cli_prints_stage_table(tmp_path, capsys):
    from repro.core.cli import main

    image = str(tmp_path / "aurora.img")
    assert main(["init", image]) == 0
    assert main(["spawn", image, "demo", "--memory-kib", "64"]) == 0
    capsys.readouterr()
    assert main(["stat", image, "1", "--checkpoints", "2"]) == 0
    out = capsys.readouterr().out
    for stage in STAGE_ORDER:
        assert stage in out
    assert "stop time" in out
