"""Non-COW journal objects: latency profile, truncate epochs, replay."""

import pytest

from repro.errors import NoSpace
from repro.machine import Machine
from repro.objstore.store import ObjectStore
from repro.units import GiB, KiB, MiB, USEC


@pytest.fixture
def setup():
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    return machine, store


def test_append_and_replay(setup):
    machine, store = setup
    journal = store.journal_create(1 * MiB)
    journal.append(b"alpha")
    journal.append(b"beta")
    journal.append(b"gamma")
    assert journal.replay() == [b"alpha", b"beta", b"gamma"]


def test_append_4k_costs_about_28us(setup):
    """Table 5's journaled column: one 4 KiB page in ~28 us."""
    machine, store = setup
    journal = store.journal_create(1 * MiB)
    start = machine.clock.now()
    journal.append(b"x" * 4096)
    elapsed = machine.clock.now() - start
    assert 24 * USEC <= elapsed <= 34 * USEC


def test_large_append_streams(setup):
    """A 1 MiB append is one streaming write, not 256 slot writes."""
    machine, store = setup
    journal = store.journal_create(64 * MiB)
    start = machine.clock.now()
    journal.append(b"y" * (1 * MiB))
    elapsed = machine.clock.now() - start
    assert elapsed < 600 * USEC  # paper: 443 us


def test_truncate_resets_and_bumps_epoch(setup):
    machine, store = setup
    journal = store.journal_create(1 * MiB)
    journal.append(b"old")
    epoch = journal.epoch
    journal.truncate()
    assert journal.epoch == epoch + 1
    journal.append(b"new")
    assert journal.replay() == [b"new"]


def test_journal_full(setup):
    machine, store = setup
    journal = store.journal_create(32 * KiB)
    with pytest.raises(NoSpace):
        for _ in range(100):
            journal.append(b"z" * 4096)


def test_journal_survives_crash(setup):
    machine, store = setup
    journal = store.journal_create(1 * MiB)
    journal.append(b"committed-1")
    journal.append(b"committed-2")
    jid = journal.jid
    machine.crash()
    machine.boot()
    store2 = ObjectStore(machine)
    assert store2.mount()
    assert store2.journal(jid).replay() == [b"committed-1", b"committed-2"]


def test_truncate_survives_crash(setup):
    machine, store = setup
    journal = store.journal_create(1 * MiB)
    journal.append(b"stale")
    journal.truncate()
    journal.append(b"fresh")
    jid = journal.jid
    machine.crash()
    machine.boot()
    store2 = ObjectStore(machine)
    store2.mount()
    assert store2.journal(jid).replay() == [b"fresh"]


def test_journal_appends_are_immediately_durable(setup):
    """No checkpoint needed: sls_journal data survives a crash that
    tears everything else in flight."""
    machine, store = setup
    journal = store.journal_create(1 * MiB)
    journal.append(b"WAL-entry")
    jid = journal.jid
    machine.crash()  # immediately after append
    machine.boot()
    store2 = ObjectStore(machine)
    store2.mount()
    assert store2.journal(jid).replay() == [b"WAL-entry"]
