"""The Mach VM subsystem: objects, shadow chains, collapse, maps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgument, SegmentationFault
from repro.hw.memory import Page
from repro.kernel.vm.vmmap import (INHERIT_SHARE, PROT_READ, PROT_WRITE,
                                   VMMap, VMMapEntry)
from repro.kernel.vm.vmobject import VMObject
from repro.machine import Machine
from repro.units import PAGE_SIZE


@pytest.fixture
def kernel():
    return Machine().kernel


# -- VM objects ------------------------------------------------------------------


def test_insert_and_lookup_page(kernel):
    obj = VMObject(kernel, 10)
    obj.insert_page(3, Page(data=b"three"))
    page, depth, owner = obj.lookup_page(3)
    assert page.realize().startswith(b"three")
    assert depth == 0 and owner is obj


def test_insert_out_of_range_rejected(kernel):
    obj = VMObject(kernel, 2)
    with pytest.raises(InvalidArgument):
        obj.insert_page(2, Page(seed=1))


def test_frame_accounting_follows_pages(kernel):
    before = kernel.physmem.used_frames
    obj = VMObject(kernel, 4)
    obj.insert_page(0, Page(seed=1))
    obj.insert_page(1, Page(seed=2))
    assert kernel.physmem.used_frames == before + 2
    obj.insert_page(0, Page(seed=3))  # replacement: no new frame
    assert kernel.physmem.used_frames == before + 2
    obj.unref()
    assert kernel.physmem.used_frames == before


def test_shadow_lookup_walks_chain(kernel):
    base = VMObject(kernel, 8)
    base.insert_page(0, Page(seed=100))
    shadow = base.shadow()
    page, depth, owner = shadow.lookup_page(0)
    assert page.seed == 100
    assert depth == 1 and owner is base
    shadow.insert_page(0, Page(seed=200))
    page, depth, _ = shadow.lookup_page(0)
    assert page.seed == 200 and depth == 0


def test_shadow_counts(kernel):
    base = VMObject(kernel, 4)
    s1 = base.shadow()
    s2 = base.shadow()
    assert base.shadow_count == 2
    s1.unref()
    assert base.shadow_count == 1
    assert not base.destroyed  # s2 still references it
    s2.unref()


def test_frozen_object_rejects_inserts(kernel):
    obj = VMObject(kernel, 4)
    obj.frozen = True
    with pytest.raises(InvalidArgument):
        obj.insert_page(0, Page(seed=1))


def _visible(obj, npages):
    return [obj.visible_page(i).seed if obj.visible_page(i) else None
            for i in range(npages)]


def test_collapse_into_parent_preserves_visibility(kernel):
    base = VMObject(kernel, 6)
    for i in range(4):
        base.insert_page(i, Page(seed=i))
    mid = base.shadow()
    mid.insert_page(1, Page(seed=101))
    mid.insert_page(4, Page(seed=104))
    top = mid.shadow()
    before = _visible(top, 6)

    parent, moved = mid.collapse_into_parent()
    assert parent is base and moved == 2
    # Repoint top over the collapsed middle (what the engine does).
    mid.shadow_count -= 1
    top.backing = base
    base.shadow_count += 1
    mid.unref()
    assert _visible(top, 6) == before
    assert top.chain_length() == 2


def test_collapse_forward_preserves_visibility(kernel):
    base = VMObject(kernel, 6)
    for i in range(4):
        base.insert_page(i, Page(seed=i))
    top = base.shadow()
    top.insert_page(1, Page(seed=201))
    before = _visible(top, 6)
    moved = top.collapse_forward()
    assert moved == 3  # pages 0, 2, 3 (1 was shadowed)
    assert top.backing is None
    assert _visible(top, 6) == before


def test_collapse_forward_refused_when_parent_shared(kernel):
    base = VMObject(kernel, 4)
    s1 = base.shadow()
    s2 = base.shadow()
    with pytest.raises(InvalidArgument):
        s1.collapse_forward()
    s1.unref()
    s2.unref()


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.integers(0, 15), st.integers(0, 1000), max_size=16),
       st.dictionaries(st.integers(0, 15), st.integers(0, 1000), max_size=16),
       st.dictionaries(st.integers(0, 15), st.integers(0, 1000), max_size=16))
def test_collapse_invariant_property(base_pages, mid_pages, top_pages):
    """Reverse collapse of the middle object never changes what the top
    of the chain sees — the core safety property of system shadowing."""
    kernel = Machine().kernel
    base = VMObject(kernel, 16)
    for pindex, seed in base_pages.items():
        base.insert_page(pindex, Page(seed=seed))
    mid = base.shadow()
    for pindex, seed in mid_pages.items():
        mid.insert_page(pindex, Page(seed=seed + 10_000))
    top = mid.shadow()
    for pindex, seed in top_pages.items():
        top.insert_page(pindex, Page(seed=seed + 20_000))
    before = _visible(top, 16)

    parent, _moved = mid.collapse_into_parent()
    mid.shadow_count -= 1
    top.backing = parent
    parent.shadow_count += 1
    mid.unref()
    assert _visible(top, 16) == before


# -- VM maps ----------------------------------------------------------------------------


def test_map_insert_and_lookup(kernel):
    vmmap = VMMap()
    obj = VMObject(kernel, 4)
    entry = VMMapEntry(0x2000, 4, PROT_READ | PROT_WRITE, obj)
    vmmap.insert(entry)
    assert vmmap.lookup(0x2001) is entry
    assert vmmap.lookup(0x2004) is None


def test_map_rejects_overlap(kernel):
    vmmap = VMMap()
    obj = VMObject(kernel, 4)
    vmmap.insert(VMMapEntry(0x2000, 4, PROT_READ, obj))
    with pytest.raises(InvalidArgument):
        vmmap.insert(VMMapEntry(0x2002, 4, PROT_READ, obj))


def test_find_space_first_fit(kernel):
    vmmap = VMMap()
    obj = VMObject(kernel, 100)
    start = vmmap.find_space(10)
    vmmap.insert(VMMapEntry(start, 10, PROT_READ, obj))
    vmmap.insert(VMMapEntry(start + 20, 10, PROT_READ, obj))
    gap = vmmap.find_space(10)
    assert gap == start + 10  # fits in the hole


def test_entry_pindex_translation(kernel):
    obj = VMObject(kernel, 20)
    entry = VMMapEntry(0x5000, 10, PROT_READ, obj, offset_pages=4)
    assert entry.pindex_of(0x5000) == 4
    assert entry.pindex_of(0x5009) == 13
    with pytest.raises(SegmentationFault):
        entry.pindex_of(0x500A)
