"""The RocksDB implementation: skiplist, WAL, SSTables, compaction,
the full DB, and the Aurora port."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, load_aurora
from repro.apps.rocksdb.compaction import merge_entries
from repro.apps.rocksdb.db import DBOptions, RocksDB
from repro.apps.rocksdb.aurora_db import AuroraRocksDB
from repro.apps.rocksdb.memtable import MemTable, SkipList
from repro.apps.rocksdb.sstable import BloomFilter, SSTable
from repro.apps.rocksdb.wal import decode_records, encode_record
from repro.core.api import AuroraAPI
from repro.slsfs.kernel_fs import mount_ffs
from repro.units import KiB, MiB


# -- skiplist ------------------------------------------------------------------


def test_skiplist_sorted_iteration():
    sl = SkipList(seed=1)
    keys = [f"k{i:04d}".encode() for i in (5, 1, 9, 3, 7)]
    for key in keys:
        sl.insert(key, key + b"-v")
    assert [k for k, _v in sl] == sorted(keys)
    assert len(sl) == 5


def test_skiplist_update_in_place():
    sl = SkipList()
    assert sl.insert(b"a", 1)
    assert not sl.insert(b"a", 2)
    assert sl.get(b"a") == 2
    assert len(sl) == 1


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.binary(min_size=1, max_size=12),
                       st.binary(max_size=12), max_size=64))
def test_skiplist_matches_dict(model):
    sl = SkipList(seed=3)
    for key, value in model.items():
        sl.insert(key, value)
    for key, value in model.items():
        assert sl.get(key) == value
    assert [k for k, _v in sl] == sorted(model)


def test_memtable_tombstones():
    mt = MemTable()
    mt.put(b"k", b"v")
    mt.delete(b"k")
    found, value = mt.get(b"k")
    assert found and value is None
    assert list(mt.entries()) == [(b"k", None)]


# -- WAL ------------------------------------------------------------------------------


def test_wal_record_round_trip():
    blob = encode_record(b"key", b"value") + encode_record(b"k2", b"v2")
    assert decode_records(blob) == [(b"key", b"value"), (b"k2", b"v2")]


def test_wal_replay_stops_at_torn_record():
    blob = encode_record(b"good", b"record")
    torn = encode_record(b"torn", b"record")[:-3]
    assert decode_records(blob + torn) == [(b"good", b"record")]


def test_wal_corrupt_crc_detected():
    blob = bytearray(encode_record(b"k", b"v"))
    blob[-1] ^= 0xFF
    assert decode_records(bytes(blob)) == []


# -- bloom filter / sstable ----------------------------------------------------------------


def test_bloom_no_false_negatives():
    bloom = BloomFilter(100)
    keys = [f"key-{i}".encode() for i in range(100)]
    for key in keys:
        bloom.add(key)
    assert all(bloom.maybe_contains(k) for k in keys)


def test_bloom_rejects_most_absent_keys():
    bloom = BloomFilter(100)
    for i in range(100):
        bloom.add(f"key-{i}".encode())
    false_positives = sum(
        bloom.maybe_contains(f"other-{i}".encode()) for i in range(1000))
    assert false_positives < 50  # ~1% expected at 10 bits/key


@pytest.fixture
def kernel_proc():
    machine = Machine()
    proc = machine.kernel.spawn("db")
    return machine.kernel, proc


def test_sstable_build_and_get(kernel_proc):
    kernel, proc = kernel_proc
    entries = [(f"k{i:05d}".encode(), f"value-{i}".encode() * 10)
               for i in range(500)]
    table = SSTable.build(kernel, proc, "/t1.sst", entries)
    assert table.get(b"k00007") == (True, b"value-7" * 10)
    assert table.get(b"k00499")[0]
    assert table.get(b"nope") == (False, None)
    assert table.nkeys == 500


def test_sstable_reopen(kernel_proc):
    kernel, proc = kernel_proc
    entries = [(f"k{i:03d}".encode(), b"v" * 20) for i in range(100)]
    SSTable.build(kernel, proc, "/t2.sst", entries)
    reopened = SSTable.open(kernel, proc, "/t2.sst")
    assert reopened.get(b"k050") == (True, b"v" * 20)
    assert reopened.smallest == b"k000"
    assert reopened.largest == b"k099"


def test_merge_entries_newest_wins_and_drops_tombstones():
    newer = [(b"a", b"new"), (b"b", None)]
    older = [(b"a", b"old"), (b"b", b"old"), (b"c", b"keep")]
    merged = merge_entries([newer, older], drop_tombstones=True)
    assert merged == [(b"a", b"new"), (b"c", b"keep")]
    kept = merge_entries([newer, older], drop_tombstones=False)
    assert kept == [(b"a", b"new"), (b"b", None), (b"c", b"keep")]


# -- the full DB ------------------------------------------------------------------------------


def make_db(memtable_bytes=64 * KiB, wal=True, sync=False):
    machine = Machine()
    mount_ffs(machine)
    proc = machine.kernel.spawn("rocksdb")
    db = RocksDB(machine.kernel, proc,
                 options=DBOptions(wal=wal, sync=sync,
                                   memtable_bytes=memtable_bytes))
    return machine, db


def test_db_put_get_delete():
    _machine, db = make_db()
    db.put(b"alpha", b"1")
    db.put(b"beta", b"2")
    assert db.get(b"alpha") == b"1"
    db.delete(b"alpha")
    assert db.get(b"alpha") is None
    assert db.get(b"beta") == b"2"


def test_db_flush_and_read_from_sstable():
    _machine, db = make_db(memtable_bytes=8 * KiB)
    for i in range(200):
        db.put(f"k{i:04d}".encode(), b"v" * 50)
    assert db.stats["flushes"] > 0
    for i in range(0, 200, 17):
        assert db.get(f"k{i:04d}".encode()) == b"v" * 50


def test_db_compaction_triggered():
    _machine, db = make_db(memtable_bytes=8 * KiB)
    for i in range(1200):
        db.put(f"k{i % 300:04d}".encode(), f"v{i}".encode() * 10)
    assert db.levels.compactions > 0
    # Newest value for every key survives compaction.
    assert db.get(b"k0299") is not None


def test_db_wal_recovery_after_crash():
    machine, db = make_db(sync=True)
    for i in range(40):
        db.put(f"key{i}".encode(), f"val{i}".encode())
    db.wal.flush()
    # "Crash": rebuild from the WAL alone.
    proc2 = machine.kernel.spawn("recovered")
    db2 = RocksDB(machine.kernel, proc2, directory="/rocksdb2",
                  options=DBOptions(wal=True))
    db2.wal = db.wal  # same log file
    assert db2.recover() == 40
    assert db2.get(b"key17") == b"val17"


def test_db_sync_writes_slower_than_buffered():
    machine_a, db_a = make_db(sync=False)
    for i in range(100):
        db_a.put(f"k{i}".encode(), b"v" * 64)
    buffered = machine_a.clock.now()

    machine_b, db_b = make_db(sync=True)
    for i in range(100):
        db_b.put(f"k{i}".encode(), b"v" * 64)
    synced = machine_b.clock.now()
    assert synced > buffered


# -- the Aurora port -----------------------------------------------------------------------------


def make_aurora_db(journal_bytes=1 * MiB):
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("rocksdb-aurora")
    group = sls.attach(proc, periodic=False)
    api = AuroraAPI(sls, proc)
    db = AuroraRocksDB(machine.kernel, proc, api,
                       journal_bytes=journal_bytes)
    return machine, sls, group, db


def test_aurora_db_put_get():
    _machine, _sls, _group, db = make_aurora_db()
    db.put(b"k", b"v")
    assert db.get(b"k") == b"v"


def test_aurora_db_journal_fills_then_checkpoints():
    machine, sls, group, db = make_aurora_db(journal_bytes=256 * KiB)
    for i in range(3000):
        db.put(f"key{i:06d}".encode(), b"x" * 100)
    db.flush()
    assert db.stats["checkpoints"] >= 1
    assert db.stats["journal_appends"] > 0


def test_aurora_db_crash_recovery_via_journal():
    """The port's durability story: checkpoint + journal tail."""
    machine, sls, group, db = make_aurora_db()
    for i in range(64):
        db.put(f"key{i:03d}".encode(), f"val{i}".encode())
    db.flush()  # group-commits the tail into the journal
    jid = db.journal.jid
    gid = group.group_id
    sls.checkpoint(group, sync=True)

    # More writes after the checkpoint, journaled but not checkpointed.
    for i in range(64, 96):
        db.put(f"key{i:03d}".encode(), f"val{i}".encode())
    db.flush()
    machine.crash()
    machine.boot()

    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    proc2 = result.root
    api2 = AuroraAPI(sls2, proc2)
    journal2 = sls2.store.journal(jid)
    # The restored memory holds the memtable up to the checkpoint; the
    # journal replay brings back everything after it.
    recovered = AuroraRocksDB.recover(machine.kernel, proc2, api2,
                                      journal2)
    assert recovered.get(b"key095") == b"val95"
    assert recovered.get(b"key010") == b"val10"
