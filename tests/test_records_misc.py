"""Smaller units: record envelopes, OID limits, misc store paths."""

import pytest

from repro import Machine
from repro.errors import CorruptRecord, InvalidArgument
from repro.hw.memory import Page
from repro.objstore import records
from repro.objstore.oid import (CLASS_FILE, CLASS_MEMORY, OIDAllocator,
                                make_oid, oid_serial)
from repro.objstore.store import ObjectStore

MEM_OID = make_oid(CLASS_MEMORY, 321)


def test_record_envelope_round_trip():
    blob = records.encode(records.REC_CKPT_META, {"x": 1})
    assert records.decode(blob, records.REC_CKPT_META) == {"x": 1}


def test_record_kind_mismatch_rejected():
    blob = records.encode(records.REC_CATALOG, {"x": 1})
    with pytest.raises(CorruptRecord):
        records.decode(blob, records.REC_CKPT_META)


def test_record_unknown_kind_rejected():
    with pytest.raises(CorruptRecord):
        records.encode("mystery", {})


def test_object_record_round_trip():
    blob = records.encode_object(42, "pipe", {"buffer": b"x"})
    assert records.decode_object(blob) == (42, "pipe", {"buffer": b"x"})


def test_oid_serial_bounds():
    with pytest.raises(InvalidArgument):
        make_oid(CLASS_FILE, 0)
    top = make_oid(CLASS_FILE, (1 << 56) - 1)
    assert oid_serial(top) == (1 << 56) - 1


def test_retain_more_than_exists_is_noop():
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    txn = store.begin_checkpoint(group_id=3)
    txn.put_pages(MEM_OID, {0: Page(seed=1)})
    store.commit(txn, sync=True)
    assert store.retain_last(3, keep=10) == 0
    assert len(store.checkpoints_for(3)) == 1


def test_partial_checkpoint_chain_restores_through_merged_view():
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    txn = store.begin_checkpoint(group_id=3)
    txn.put_pages(MEM_OID, {0: Page(seed=1), 1: Page(seed=2)})
    full = store.commit(txn, sync=True)
    txn2 = store.begin_checkpoint(group_id=3, parent=full.ckpt_id,
                                  partial=True)
    txn2.put_pages(MEM_OID, {1: Page(seed=99)})
    partial = store.commit(txn2, sync=True)
    _records, pages = store.merged_view(partial.ckpt_id)
    assert store.fetch_page(pages[MEM_OID][0]).seed == 1
    assert store.fetch_page(pages[MEM_OID][1]).seed == 99


def test_store_requires_mount():
    machine = Machine()
    store = ObjectStore(machine)
    from repro.errors import StoreError
    with pytest.raises(StoreError):
        store.begin_checkpoint(group_id=1)


def test_filebench_runs_are_deterministic():
    from repro.slsfs import FFSModel
    from repro.workloads.filebench import FileBench
    from repro.units import KiB, MiB

    def run():
        machine = Machine()
        return FileBench(FFSModel(machine),
                         seed=5).write_throughput(4 * KiB, False,
                                                  total_bytes=8 * MiB)

    assert run() == run()
