"""Observational equivalence of the columnar hot path vs the legacy one.

The bitmap :class:`Pmap`, the run-based shadow merge and the slab
collapse replaced per-page dict implementations for scale; the legacy
implementations are kept in-tree as executable specifications.  These
properties drive both sides with identical randomized inputs and
assert identical observable state: mapped/writable/dirty sets,
downgrade counts, merge results, frame accounting and restored memory
contents.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, load_aurora
from repro.errors import SegmentationFault
from repro.hw.memory import Page
from repro.kernel.vm.pmap import LegacyPmap, Pmap, iter_bit_runs
from repro.kernel.vm.vmobject import VMObject
from repro.core.shadowing import (merged_chain_pages,
                                  merged_chain_pages_legacy)
from repro.units import PAGE_SIZE

PAGES = 96  # page-number space the random ops draw from


# -- Pmap.mark_dirty regression (typed fault, not KeyError) ---------------------


@pytest.mark.parametrize("pmap_cls", [Pmap, LegacyPmap])
def test_mark_dirty_unmapped_raises_typed_fault(pmap_cls):
    pmap = pmap_cls()
    with pytest.raises(SegmentationFault, match="no PTE installed"):
        pmap.mark_dirty(0x44)
    # Never a bare KeyError, and a mapped page still works.
    pmap.enter(0x44, writable=True)
    pmap.mark_dirty(0x44)
    assert pmap.dirty_pages() == [0x44]


@pytest.mark.parametrize("pmap_cls", [Pmap, LegacyPmap])
def test_mark_dirty_after_remove_raises(pmap_cls):
    pmap = pmap_cls()
    pmap.enter(7, writable=True)
    pmap.remove(7)
    with pytest.raises(SegmentationFault):
        pmap.mark_dirty(7)


# -- bitmap pmap vs dict-of-PTE pmap ---------------------------------------------


def _page(draw_int):
    return st.integers(min_value=0, max_value=PAGES - 1)


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("enter"), st.integers(0, PAGES - 1),
                  st.booleans()),
        st.tuples(st.just("enter_range"), st.integers(0, PAGES - 1),
                  st.integers(0, 16), st.booleans(), st.booleans()),
        st.tuples(st.just("remove"), st.integers(0, PAGES - 1)),
        st.tuples(st.just("remove_range"), st.integers(0, PAGES - 1),
                  st.integers(0, 16)),
        st.tuples(st.just("protect"), st.integers(0, PAGES - 1),
                  st.integers(0, PAGES)),
        st.tuples(st.just("dirty"), st.integers(0, PAGES - 1)),
        st.tuples(st.just("collect"), st.integers(0, PAGES - 1),
                  st.integers(0, PAGES)),
    ),
    max_size=60)


def _observe(pmap):
    return {
        "resident": pmap.resident_pages(),
        "mapped": [p for p in range(PAGES) if pmap.is_mapped(p)],
        "writable": [p for p in range(PAGES) if pmap.is_writable(p)],
        "dirty": pmap.dirty_pages(),
        "downgrades": pmap.wp_downgrades,
    }


@pytest.mark.parametrize("chunk_bits", [4096, 32],
                         ids=["default-chunk", "tiny-chunk"])
@settings(max_examples=200, deadline=None)
@given(ops=_ops)
def test_pmap_equivalence(chunk_bits, ops):
    # ``tiny-chunk`` forces the 96-page op space to span chunk
    # boundaries, exercising mask splitting and run stitching.
    new, old = Pmap(chunk_bits=chunk_bits), LegacyPmap()
    for op in ops:
        if op[0] == "enter":
            new.enter(op[1], op[2])
            old.enter(op[1], op[2])
        elif op[0] == "enter_range":
            new.enter_range(op[1], op[2], op[3], dirty=op[4])
            old.enter_range(op[1], op[2], op[3], dirty=op[4])
        elif op[0] == "remove":
            new.remove(op[1])
            old.remove(op[1])
        elif op[0] == "remove_range":
            new.remove_range(op[1], op[2])
            old.remove_range(op[1], op[2])
        elif op[0] == "protect":
            assert (new.write_protect_range(op[1], op[2])
                    == old.write_protect_range(op[1], op[2]))
        elif op[0] == "dirty":
            outcomes = []
            for pmap in (new, old):
                try:
                    pmap.mark_dirty(op[1])
                    outcomes.append("ok")
                except SegmentationFault:
                    outcomes.append("fault")
            assert outcomes[0] == outcomes[1]
        elif op[0] == "collect":
            assert (list(new.collect_dirty(op[1], op[2]))
                    == list(old.collect_dirty(op[1], op[2])))
        assert _observe(new) == _observe(old)


@settings(max_examples=200, deadline=None)
@given(bits=st.integers(min_value=0, max_value=(1 << 300) - 1))
def test_iter_bit_runs_matches_bit_scan(bits):
    expanded = []
    for start, length in iter_bit_runs(bits):
        assert length > 0
        expanded.extend(range(start, start + length))
    assert expanded == [i for i in range(bits.bit_length())
                        if bits >> i & 1]
    # Runs are maximal: consecutive runs never touch.
    runs = list(iter_bit_runs(bits))
    for (s1, l1), (s2, _l2) in zip(runs, runs[1:]):
        assert s1 + l1 < s2


@settings(max_examples=200, deadline=None)
@given(values=st.sets(st.integers(0, 1 << 60), max_size=80))
def test_arith_runs_round_trip(values):
    from repro.core.runs import build_arith_runs, expand_arith_runs
    runs = build_arith_runs(values)
    assert expand_arith_runs(runs) == sorted(values)


# -- run-based shadow merge vs per-page setdefault merge -------------------------


_chain_layers = st.lists(
    st.dictionaries(st.integers(0, 31), st.integers(0, 1 << 30),
                    max_size=12),
    min_size=1, max_size=5)


def _build_chain(kernel, layers, foreign_base):
    """A shadow chain: base first, newest (top) last, one logical OID."""
    base = None
    if foreign_base:
        # A deeper object owned by a different logical OID: the merge
        # must stop before it.
        base = VMObject(kernel, 32, name="foreign")
        base.sls_oid = 999
        base.insert_pages({i: Page(seed=7000 + i) for i in range(0, 32, 3)})
    top = base
    for layer in layers:
        obj = (top.shadow() if top is not None else VMObject(kernel, 32))
        obj.sls_oid = 1
        obj.insert_pages({pindex: Page(seed=seed)
                          for pindex, seed in layer.items()})
        top = obj
    return top


@settings(max_examples=100, deadline=None)
@given(layers=_chain_layers, foreign_base=st.booleans())
def test_merged_chain_pages_equivalence(layers, foreign_base):
    kernel = Machine().kernel
    top = _build_chain(kernel, layers, foreign_base)
    bulk = merged_chain_pages(top)
    legacy = merged_chain_pages_legacy(top)
    # Identical keys AND identical page identity (newest wins).
    assert bulk.keys() == legacy.keys()
    for pindex in bulk:
        assert bulk[pindex] is legacy[pindex]


@settings(max_examples=100, deadline=None)
@given(parent_pages=st.dictionaries(st.integers(0, 31),
                                    st.integers(0, 1 << 30), max_size=16),
       shadow_pages=st.dictionaries(st.integers(0, 31),
                                    st.integers(0, 1 << 30), max_size=16))
def test_collapse_into_parent_equivalence(parent_pages, shadow_pages):
    """Slab collapse and page-at-a-time collapse agree on resulting
    pages, moved count and frame accounting."""
    results = []
    for legacy in (False, True):
        kernel = Machine().kernel
        parent = VMObject(kernel, 32)
        parent.insert_pages({p: Page(seed=s)
                             for p, s in parent_pages.items()})
        shadow = parent.shadow()
        shadow.insert_pages({p: Page(seed=s)
                             for p, s in shadow_pages.items()})
        parent.frozen = False
        shadow.frozen = False
        if legacy:
            merged_parent, moved = shadow.collapse_into_parent_legacy()
        else:
            merged_parent, moved = shadow.collapse_into_parent()
        results.append({
            "pages": {p: page.seed
                      for p, page in merged_parent.pages.items()},
            "moved": moved,
            "frames": kernel.physmem.used_frames,
            "shadow_empty": len(shadow.pages),
        })
        merged_parent.unref()  # the ref collapse_into_parent returned
    assert results[0] == results[1]


# -- end-to-end: columnar and legacy paths restore identical state ---------------


def _run_workload(legacy_hot_path):
    machine = Machine()
    sls = load_aurora(machine)
    sls.shadow.legacy_hot_path = legacy_hot_path
    import repro.kernel.vm.vmspace as vmspace_mod
    from repro.kernel.vm.pmap import LegacyPmap as _LP, Pmap as _P
    original = vmspace_mod.Pmap
    vmspace_mod.Pmap = _LP if legacy_hot_path else _P
    try:
        proc = machine.kernel.spawn("app")
        group = sls.attach(proc, periodic=False)
        addr = proc.vmspace.mmap(64 * PAGE_SIZE, name="heap")
        for round_no in range(4):
            proc.vmspace.write(addr + round_no * PAGE_SIZE,
                               f"round-{round_no}".encode())
            proc.vmspace.touch(addr + 32 * PAGE_SIZE, 8,
                               seed=100 + round_no)
            sls.checkpoint(group, sync=True)
        gid = group.group_id
        machine.crash()
        machine.boot()
        sls2 = load_aurora(machine)
        result = sls2.restore(gid, periodic=False)
        space = result.root.vmspace
        image = space.read(addr, 40 * PAGE_SIZE)
        stats = {
            "downgrades": None,  # pmap instance did not survive crash
            "image": image,
        }
        return stats
    finally:
        vmspace_mod.Pmap = original


def test_columnar_and_legacy_restore_identical_state():
    columnar = _run_workload(legacy_hot_path=False)
    legacy = _run_workload(legacy_hot_path=True)
    assert columnar == legacy
