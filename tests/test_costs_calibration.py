"""Locks on the cost model's calibration (src/repro/core/costs.py).

Every constant in the cost model cites a paper measurement; these
tests pin the *derived relationships* so a future retuning cannot
silently break a calibration that another number depends on.
"""

import pytest

from repro.core import costs
from repro.units import GiB, KiB, MiB, PAGE_SIZE, USEC, MSEC, pages_of


def test_all_costs_are_positive_integers():
    for name in dir(costs):
        if name.isupper():
            value = getattr(costs, name)
            assert isinstance(value, int), name
            assert value > 0, name


def test_journal_4k_write_matches_table5():
    """Table 5: one 4 KiB journaled page in ~28 us."""
    transfer = (4 * KiB * 1_000_000_000) // costs.SYNC_WRITE_BW
    total = costs.SYNC_WRITE_LATENCY + transfer
    assert 26 * USEC <= total <= 30 * USEC


def test_journal_1gib_write_matches_table5():
    """Table 5: 1 GiB journaled in ~417 ms -> ~2.57 GiB/s."""
    transfer = (1 * GiB * 1_000_000_000) // costs.SYNC_WRITE_BW
    assert 380 * MSEC <= transfer <= 440 * MSEC


def test_incremental_slope_matches_table5():
    """Marking + collapse together ~= 23 ns per dirty page."""
    per_page = costs.COW_MARK_PER_PAGE + costs.COLLAPSE_PAGE_MOVE
    assert 18 <= per_page <= 30


def test_aggregate_flush_bandwidth_matches_table7():
    """Table 7: 500 MiB flushed in ~97.6 ms -> ~5.4 GiB/s over 4
    devices."""
    aggregate = costs.NVME_WRITE_BW * costs.NVME_DEVICES
    flush_ns = (500 * MiB * 1_000_000_000) // aggregate
    assert 80 * MSEC <= flush_ns <= 110 * MSEC


def test_criu_memory_copy_matches_table1():
    """Table 1: 500 MB copied in ~413 ms -> ~3.2 us/page."""
    copy_ns = pages_of(500 * MiB) * costs.CRIU_PAGE_COPY
    assert 350 * MSEC <= copy_ns <= 480 * MSEC


def test_rdb_fork_stop_matches_table7():
    """Table 7: ~8 ms fork stop for 500 MiB -> ~60 ns/page."""
    fork_ns = pages_of(500 * MiB) * costs.FORK_COW_SETUP_PER_PAGE
    assert 6 * MSEC <= fork_ns <= 10 * MSEC


def test_restore_page_insert_matches_table6():
    """Table 6: firefox's 198 MiB full restore is dominated by
    ~230 ns/page inserts (~11.7 ms)."""
    insert_ns = pages_of(198 * MiB) * costs.RESTORE_PAGE_INSERT
    assert 9 * MSEC <= insert_ns <= 14 * MSEC


def test_sysv_scan_premium_matches_table4():
    """Table 4: SysV (14.9 us) = base + 128-slot namespace scan."""
    total = costs.CKPT_SHM_SYSV_BASE + \
        costs.SYSV_NAMESPACE_SLOTS * costs.CKPT_SHM_SYSV_SCAN_PER_SLOT
    assert 14 * USEC <= total <= 16 * USEC
    assert total > 2 * costs.CKPT_SHM_POSIX


def test_kqueue_event_cost_matches_table4():
    """Table 4: 1024 knotes -> 35.2 us total."""
    total = costs.CKPT_KQUEUE_BASE + 1024 * costs.CKPT_KEVENT_EACH
    assert 33 * USEC <= total <= 38 * USEC


def test_fsync_cost_ordering_matches_fig3():
    """Figure 3c: Aurora (no-op) << FFS < ZFS for syncs; Aurora's
    create is the slowest create."""
    assert costs.SLSFS_FSYNC < costs.FFS_FSYNC < \
        costs.ZFS_ZIL_COMMIT + costs.ZFS_COW_TREE_UPDATE
    assert costs.SLSFS_CREATE_GLOBAL_LOCK > costs.FFS_CREATE + \
        costs.FFS_SUJ_RECORD
    assert costs.SLSFS_CREATE_GLOBAL_LOCK > costs.ZFS_CREATE


def test_atomic_base_below_incremental_base():
    """Table 5: sls_memckpt skips quiesce + OS-state walk (~100 us
    cheaper)."""
    assert costs.CKPT_ATOMIC_BASE < costs.CKPT_ORCH_BASE
    assert 50 * USEC <= costs.CKPT_ORCH_BASE - costs.CKPT_ATOMIC_BASE \
        <= 120 * USEC


def test_testbed_shape():
    """§9: dual Xeon Silver 4116 (24 cores), 96 GiB RAM, 4 devices."""
    assert costs.NCPUS == 24
    assert costs.PHYSMEM_BYTES == 96 * GiB
    assert costs.NVME_DEVICES == 4
