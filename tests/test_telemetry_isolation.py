"""Telemetry isolation: reset between experiments, instance-label
separation, and deterministic id allocation after a reset."""

import pytest

from repro import Machine, load_aurora
from repro.core import events, telemetry, tracing
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture(autouse=True)
def fresh_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _one_checkpoint():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 4, seed=0)
    group = sls.attach(proc, periodic=False)
    machine.run_for(10 * MSEC)
    sls.checkpoint(group, sync=True)
    return machine, sls, group


def test_reset_clears_registry_tracer_and_event_log():
    _one_checkpoint()
    registry = telemetry.registry()
    assert len(registry.spans) > 0
    assert registry.value("sls.group.checkpoints") > 0
    assert len(tracing.tracer().traces()) > 0
    assert len(events.log()) > 0
    telemetry.reset()
    assert len(registry.spans) == 0
    assert registry.value("sls.group.checkpoints") == 0
    assert registry.stage_rows() == []
    assert registry.active_trace is None
    assert tracing.tracer().traces() == []
    assert len(events.log()) == 0


def test_reset_restarts_instance_and_trace_ids():
    _one_checkpoint()
    first_ids = [t.trace_id for t in tracing.tracer().traces()]
    telemetry.reset()
    assert telemetry.next_instance() == 1
    telemetry.reset()
    _one_checkpoint()
    assert [t.trace_id for t in tracing.tracer().traces()] == first_ids


def test_stats_views_of_successive_machines_stay_separate():
    """Two experiments without a reset: the second machine's groups
    get fresh instance labels, so the first run's numbers are
    untouched while registry.value() aggregates across both."""
    machine1, sls1, group1 = _one_checkpoint()
    before = group1.stats["checkpoints"]
    machine2, sls2, group2 = _one_checkpoint()
    assert group2.group_id == group1.group_id  # ids restart per machine
    assert group1.stats["checkpoints"] == before
    assert group2.stats["checkpoints"] == 1
    registry = telemetry.registry()
    assert registry.value("sls.group.checkpoints",
                          group=group1.group_id) == before + 1
    # The backing counters really are distinct (different inst label).
    counters = [c for c in registry.counters_matching(
        "sls.group.checkpoints", group=group1.group_id)]
    assert len(counters) == 2
    assert {c.labels["inst"] for c in counters} == \
        {group1.stats._labels["inst"], group2.stats._labels["inst"]}


def test_disabling_telemetry_keeps_counters_live():
    telemetry.set_enabled(False)
    machine, sls, group = _one_checkpoint()
    registry = telemetry.registry()
    # Spans, traces and events all went quiet...
    assert len(registry.spans) == 0
    assert tracing.tracer().traces() == []
    assert len(events.log()) == 0
    assert registry.stage_rows() == []
    # ...but bookkeeping counters (StatsView and device stats) stay
    # live: subsystems depend on them for behaviour, not observation.
    assert group.stats["checkpoints"] == 1
    assert registry.value("nvme.bytes_written") > 0
