"""The sls command line interface (Table 2)."""

import pathlib

import pytest

from repro.core.cli import main
from repro.core.coredump import parse_core


@pytest.fixture
def image(tmp_path):
    path = str(tmp_path / "aurora.img")
    assert main(["init", path]) == 0
    return path


def test_init_creates_image(tmp_path):
    path = str(tmp_path / "new.img")
    assert main(["init", path]) == 0
    assert pathlib.Path(path).exists()


def test_spawn_and_ps(image, capsys):
    assert main(["spawn", image, "demo", "--memory-kib", "64"]) == 0
    assert main(["ps", image]) == 0
    out = capsys.readouterr().out
    assert "demo" in out or "group1" in out


def test_run_advances_application(image, capsys):
    main(["spawn", image, "demo", "--memory-kib", "64"])
    assert main(["run", image, "1", "--millis", "30"]) == 0
    out = capsys.readouterr().out
    assert "step" in out


def test_checkpoint_and_history(image, capsys):
    main(["spawn", image, "demo"])
    assert main(["checkpoint", image, "1", "--name", "tagged"]) == 0
    assert main(["history", image, "1"]) == 0
    out = capsys.readouterr().out
    assert "tagged" in out


def test_restore_reports_state(image, capsys):
    main(["spawn", image, "demo"])
    assert main(["restore", image, "1"]) == 0
    out = capsys.readouterr().out
    assert "restored group 1" in out
    assert "pages eager" in out


def test_restore_lazy_flag(image, capsys):
    main(["spawn", image, "demo"])
    assert main(["restore", image, "1", "--lazy"]) == 0
    out = capsys.readouterr().out
    assert "0 pages eager" in out


def test_suspend_resume_cycle(image, capsys):
    main(["spawn", image, "demo"])
    assert main(["suspend", image, "1"]) == 0
    assert main(["resume", image, "1"]) == 0
    out = capsys.readouterr().out
    assert "resumed group 1" in out


def test_dump_produces_parseable_elf(image, tmp_path, capsys):
    main(["spawn", image, "demo", "--memory-kib", "64"])
    core_path = str(tmp_path / "core.elf")
    assert main(["dump", image, "1", "-o", core_path]) == 0
    parsed = parse_core(pathlib.Path(core_path).read_bytes())
    assert parsed["segments"]
    assert parsed["notes"]


def test_send_recv_between_images(image, tmp_path, capsys):
    main(["spawn", image, "demo"])
    stream_path = str(tmp_path / "app.stream")
    assert main(["send", image, "1", "-o", stream_path]) == 0

    other = str(tmp_path / "other.img")
    main(["init", other])
    assert main(["recv", other, stream_path]) == 0
    assert main(["restore", other, "1"]) == 0
    out = capsys.readouterr().out
    assert "restored group 1" in out


def test_image_persists_across_invocations(image, capsys):
    """Each CLI call boots a fresh machine; only the image survives —
    like a real disk."""
    main(["spawn", image, "demo"])
    main(["run", image, "1", "--millis", "20"])
    main(["run", image, "1", "--millis", "20"])
    capsys.readouterr()
    main(["history", image, "1"])
    out = capsys.readouterr().out
    # Checkpoints from all three invocations are in the store.
    assert len(out.strip().splitlines()) >= 4
