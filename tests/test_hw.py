"""Hardware models: NVMe devices, striping, memory, CPUs, NIC."""

import pytest

from repro.core import costs
from repro.errors import DeviceFull, InvalidArgument, StoreError
from repro.hw.clock import SimClock
from repro.hw.cpu import CPUSet
from repro.hw.memory import Page, PhysicalMemory, synthetic_bytes
from repro.hw.nic import NIC
from repro.hw.nvme import NVMeDevice, StripedArray, synthetic_payload
from repro.units import GiB, KiB, MiB, PAGE_SIZE, STRIPE_SIZE, USEC


# -- pages -------------------------------------------------------------------


def test_page_requires_exactly_one_payload():
    with pytest.raises(InvalidArgument):
        Page()
    with pytest.raises(InvalidArgument):
        Page(data=b"x", seed=1)


def test_page_realize_pads_to_page_size():
    page = Page(data=b"abc")
    content = page.realize()
    assert len(content) == PAGE_SIZE
    assert content.startswith(b"abc")


def test_synthetic_page_is_deterministic():
    assert Page(seed=7).realize() == Page(seed=7).realize()
    assert Page(seed=7).realize() != Page(seed=8).realize()
    assert synthetic_bytes(7, 100) == Page(seed=7).realize()[:100]


def test_page_copy_preserves_content():
    real = Page(data=b"hello")
    syn = Page(seed=3)
    assert real.copy().same_content(real)
    assert syn.copy().same_content(syn)


def test_page_rejects_oversized_payload():
    with pytest.raises(InvalidArgument):
        Page(data=b"x" * (PAGE_SIZE + 1))


# -- physical memory ------------------------------------------------------------


def test_physmem_accounting():
    mem = PhysicalMemory(10 * PAGE_SIZE)
    assert mem.total_frames == 10
    mem.allocate(4)
    assert mem.used_frames == 4
    assert mem.free_frames == 6
    mem.release(2)
    assert mem.used_frames == 2


def test_physmem_overflow_is_an_error():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    with pytest.raises(MemoryError):
        mem.allocate(3)


def test_physmem_release_underflow_rejected():
    mem = PhysicalMemory(2 * PAGE_SIZE)
    with pytest.raises(InvalidArgument):
        mem.release(1)


# -- NVMe ------------------------------------------------------------------------


def make_device(capacity=1 * GiB):
    clock = SimClock()
    return clock, NVMeDevice(clock, capacity)


def test_sync_write_read_round_trip():
    clock, dev = make_device()
    dev.write(0, b"hello world")
    assert dev.read(0) == b"hello world"


def test_write_beyond_capacity_rejected():
    clock, dev = make_device(capacity=1024)
    with pytest.raises(DeviceFull):
        dev.submit_write(1000, b"x" * 100)


def test_read_of_unwritten_extent_fails():
    clock, dev = make_device()
    with pytest.raises(StoreError):
        dev.read(4096)


def test_async_write_not_visible_until_completion():
    clock, dev = make_device()
    done = dev.submit_write(0, b"payload")
    assert not dev.has_extent(0)
    clock.advance_to(done)
    assert dev.has_extent(0)


def test_crash_tears_inflight_writes():
    clock, dev = make_device()
    done1 = dev.submit_write(0, b"first")
    clock.advance_to(done1)
    dev.submit_write(8192, b"second")  # still in the queue
    lost = dev.discard_inflight()
    assert lost == 1
    assert dev.has_extent(0)
    assert not dev.has_extent(8192)


def test_sync_write_latency_matches_journal_calibration():
    """A 4 KiB queue-depth-1 sync write costs ~28 us (Table 5)."""
    clock, dev = make_device()
    start = clock.now()
    dev.write(0, b"x" * 4096, sync=True)
    elapsed = clock.now() - start
    assert 25 * USEC <= elapsed <= 32 * USEC


def test_async_writes_pipeline_at_bandwidth():
    """Many queued writes stream at device bandwidth: total time far
    below the sum of per-command latencies."""
    clock, dev = make_device()
    n = 100
    last = 0
    for i in range(n):
        last = dev.submit_write(i * STRIPE_SIZE * 4,
                                synthetic_payload(i, 4096))
    elapsed = last - clock.now()
    assert elapsed < n * costs.NVME_WRITE_LATENCY


def test_stripe_units_map_round_robin():
    clock = SimClock()
    array = StripedArray(clock, ndevices=4, capacity_per_device=1 * GiB)
    array.write(0, b"a")
    array.write(STRIPE_SIZE, b"b")
    array.write(2 * STRIPE_SIZE, b"c")
    array.write(3 * STRIPE_SIZE, b"d")
    counts = [dev.write_commands for dev in array.devices]
    assert counts == [1, 1, 1, 1]
    assert array.read(STRIPE_SIZE) == b"b"


def test_striped_aggregate_bandwidth_beats_single_device():
    """4 devices striped flush ~4x faster than one device."""
    def flush_time(ndev):
        clock = SimClock()
        array = StripedArray(clock, ndevices=ndev,
                             capacity_per_device=4 * GiB)
        total = 64 * MiB
        last = 0
        offset = 0
        while offset < total:
            last = array.submit_write(offset,
                                      synthetic_payload(0, STRIPE_SIZE))
            offset += STRIPE_SIZE
        return last

    t1 = flush_time(1)
    t4 = flush_time(4)
    assert t1 > 3 * t4


def test_synthetic_payload_accounting():
    clock, dev = make_device()
    dev.write(0, synthetic_payload(seed=9, length=64 * KiB))
    assert dev.bytes_written == 64 * KiB
    payload = dev.read(0)
    assert payload == ("synthetic", 9, 64 * KiB)


# -- CPUs ------------------------------------------------------------------------------


def test_ipi_broadcast_charges_time_and_counts():
    clock = SimClock()
    cpus = CPUSet(clock, 8)
    elapsed = cpus.broadcast_ipi(4)
    assert elapsed > 0
    assert clock.now() == elapsed
    assert sum(c.ipi_count for c in cpus.cpus) == 4


def test_tlb_shootdown_caps_at_full_flush():
    clock = SimClock()
    cpus = CPUSet(clock, 4)
    small = cpus.tlb_shootdown(2, 4)
    clock2 = SimClock()
    cpus2 = CPUSet(clock2, 4)
    huge = cpus2.tlb_shootdown(2, 1_000_000)
    capped = (costs.TLB_SHOOTDOWN_BASE +
              costs.TLB_FULL_FLUSH_THRESHOLD_PAGES *
              costs.TLB_INVLPG_PER_PAGE)
    assert small < huge <= capped
    assert cpus2.cpus[0].tlb_flush_count == 1


def test_zero_core_operations_are_free():
    clock = SimClock()
    cpus = CPUSet(clock, 4)
    assert cpus.broadcast_ipi(0) == 0
    assert cpus.tlb_shootdown(0, 100) == 0
    assert clock.now() == 0


# -- NIC ------------------------------------------------------------------------------------


def test_nic_transfer_time_scales_with_size():
    clock = SimClock()
    nic = NIC(clock)
    small = nic.transfer_time(1000)
    large = nic.transfer_time(1_000_000)
    assert large > 100 * small


def test_nic_send_counts():
    clock = SimClock()
    nic = NIC(clock)
    nic.send(1500)
    assert nic.bytes_sent == 1500
    assert nic.packets_sent == 1
