"""Quiescing and system shadowing."""

import pytest

from repro import Machine, load_aurora
from repro.core import costs
from repro.core.quiesce import assert_quiesced, quiesce_group, resume_group
from repro.core.shadowing import FORWARD, REVERSE, merged_chain_pages
from repro.kernel.proc.thread import IN_SYSCALL, IN_SYSCALL_SLEEPING, IN_USER
from repro.kernel.vm.vmmap import INHERIT_SHARE
from repro.units import PAGE_SIZE


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    group = sls.attach(proc, periodic=False)
    return machine, sls, proc, group


# -- quiesce ----------------------------------------------------------------------


def test_quiesce_parks_all_threads(setup):
    machine, sls, proc, group = setup
    proc.add_thread()
    proc.add_thread()
    report = quiesce_group(machine.kernel, group)
    assert report.threads == 3
    assert assert_quiesced(group)
    resume_group(machine.kernel, group)
    assert all(t.location == IN_USER for t in proc.threads)


def test_quiesce_waits_out_fast_syscalls(setup):
    machine, sls, proc, group = setup
    proc.main_thread.enter_syscall("getpid")
    report = quiesce_group(machine.kernel, group)
    assert report.waited_syscalls == 1
    assert report.restarted_syscalls == 0


def test_quiesce_restarts_sleeping_syscalls_transparently(setup):
    """No EINTR: the PC is rewound so the call is reissued (§5.1)."""
    machine, sls, proc, group = setup
    thread = proc.main_thread
    thread.cpu_state.regs["rip"] = 0x4000
    thread.enter_syscall("recv", sleeping=True)
    report = quiesce_group(machine.kernel, group)
    assert report.restarted_syscalls == 1
    assert thread.cpu_state.regs["rip"] == 0x4000 - 2
    resume_group(machine.kernel, group)
    assert not thread.syscall_restarted


def test_quiesce_sends_ipis(setup):
    machine, sls, proc, group = setup
    before = sum(c.ipi_count for c in machine.kernel.cpus.cpus)
    quiesce_group(machine.kernel, group)
    assert sum(c.ipi_count for c in machine.kernel.cpus.cpus) > before


def test_quiesce_flushes_lazy_fpu(setup):
    machine, sls, proc, group = setup
    proc.main_thread.cpu_state.fpu_on_cpu = True
    quiesce_group(machine.kernel, group)
    assert not proc.main_thread.cpu_state.fpu_on_cpu


# -- system shadowing -----------------------------------------------------------------


def test_shadow_pass_creates_shadow_and_freezes_old_top(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    proc.vmspace.touch(addr, 8, seed=1)
    old_top = proc.vmspace.entry_at(addr).vmobject

    items = sls.shadow.shadow_group(group)
    assert len(items) == 1
    assert len(items[0].pages) == 8  # first checkpoint: full content
    new_top = proc.vmspace.entry_at(addr).vmobject
    assert new_top is not old_top
    assert new_top.backing is old_top
    assert old_top.frozen
    assert new_top.sls_oid == old_top.sls_oid


def test_second_pass_flushes_only_dirty(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(64 * PAGE_SIZE, name="heap")
    proc.vmspace.touch(addr, 64, seed=1)
    sls.shadow.shadow_group(group)
    sls.shadow.mark_flushed(group)
    proc.vmspace.touch(addr, 3, seed=2)  # dirty 3 pages
    items = sls.shadow.shadow_group(group)
    assert len(items[0].pages) == 3


def test_chain_bounded_at_three_objects(setup):
    """base <- flushing <- active: eager collapse keeps chains short."""
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    for round_no in range(6):
        proc.vmspace.touch(addr, 2, seed=round_no)
        sls.shadow.collapse_completed(group)
        sls.shadow.shadow_group(group)
        sls.shadow.mark_flushed(group)
        top = proc.vmspace.entry_at(addr).vmobject
        assert top.chain_length() <= 3


def test_collapse_preserves_contents(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"round0")
    sls.shadow.shadow_group(group)
    sls.shadow.mark_flushed(group)
    proc.vmspace.write(addr + PAGE_SIZE, b"round1")
    sls.shadow.collapse_completed(group)
    sls.shadow.shadow_group(group)
    sls.shadow.mark_flushed(group)
    sls.shadow.collapse_completed(group)
    assert proc.vmspace.read(addr, 6) == b"round0"
    assert proc.vmspace.read(addr + PAGE_SIZE, 6) == b"round1"


def test_shared_memory_shadowed_once_for_all_sharers(setup):
    """System shadowing handles what fork-COW cannot: both sharers are
    repointed to one shadow and keep seeing each other's writes."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fd = kernel.shm_open(proc, "/shared", 4 * PAGE_SIZE)
    addr = kernel.shm_mmap(proc, fd)
    child = kernel.fork(proc)  # joins the group automatically
    proc.vmspace.write(addr, b"before")

    sls.shadow.shadow_group(group)
    # Both entries now point at the same (new) shadow.
    parent_obj = proc.vmspace.entry_at(addr).vmobject
    child_obj = child.vmspace.entry_at(addr).vmobject
    assert parent_obj is child_obj
    # Sharing still works after the shadow pass.
    proc.vmspace.write(addr, b"AFTER!")
    assert child.vmspace.read(addr, 6) == b"AFTER!"
    # The shm descriptor backmap points at the newest shadow.
    segment = proc.fdtable.get(fd).fobj
    assert segment.vmobject is parent_obj


def test_fork_cow_interoperates_with_system_shadowing(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"shared-base")
    child = kernel.fork(proc)
    sls.shadow.shadow_group(group)
    # Private writes still diverge after the system shadow pass.
    proc.vmspace.write(addr, b"parent-only")
    assert child.vmspace.read(addr, 11) == b"shared-base"


def test_excluded_entries_not_shadowed(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="scratch")
    proc.vmspace.touch(addr, 4, seed=1)
    proc.vmspace.entry_at(addr).sls_excluded = True
    items = sls.shadow.shadow_group(group)
    assert items == []


def test_write_protect_cost_scales_with_dirty_set(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(2048 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 2048, seed=0)
    t0 = machine.clock.now()
    sls.shadow.shadow_group(group)
    big = machine.clock.now() - t0
    sls.shadow.mark_flushed(group)

    proc.vmspace.touch(addr, 4, seed=1)
    sls.shadow.collapse_completed(group)
    t0 = machine.clock.now()
    sls.shadow.shadow_group(group)
    small = machine.clock.now() - t0
    assert big > 4 * small  # 2048 pages vs 4 pages


def test_forward_collapse_is_slower_for_large_bases():
    """The ablation behind §6: reversing the collapse direction makes
    its cost proportional to the dirty set, not the resident set."""
    def run(direction):
        machine = Machine()
        sls = load_aurora(machine)
        sls.shadow.collapse_direction = direction
        proc = machine.kernel.spawn("app")
        group = sls.attach(proc, periodic=False)
        addr = proc.vmspace.mmap(4096 * PAGE_SIZE, name="heap")
        proc.vmspace.fill(addr, 4096, seed=0)
        sls.shadow.shadow_group(group)
        sls.shadow.mark_flushed(group)
        proc.vmspace.touch(addr, 2, seed=1)
        sls.shadow.shadow_group(group)      # freezes the 2-page shadow
        sls.shadow.mark_flushed(group)
        t0 = machine.clock.now()
        sls.shadow.collapse_completed(group)
        return machine.clock.now() - t0

    reverse_cost = run(REVERSE)
    forward_cost = run(FORWARD)
    assert forward_cost > 10 * reverse_cost
