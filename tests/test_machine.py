"""Machine lifecycle: boots, crashes, torn IO, event-loop scoping."""

import pytest

from repro import Machine
from repro.errors import MachineCrashed
from repro.units import GiB, MSEC


def test_boot_counts_and_vdso_changes():
    machine = Machine()
    assert machine.boot_count == 1
    first_vdso = machine.kernel.vdso.content_seed()
    machine.crash()
    machine.boot()
    assert machine.boot_count == 2
    assert machine.kernel.vdso.content_seed() != first_vdso


def test_cannot_boot_twice_without_crash():
    machine = Machine()
    with pytest.raises(MachineCrashed):
        machine.boot()


def test_crashed_kernel_rejects_syscalls():
    machine = Machine()
    kernel = machine.kernel
    proc = kernel.spawn("app")
    machine.crash()
    with pytest.raises(MachineCrashed):
        kernel.open(proc, "/f", 0x40)


def test_crash_discards_pending_events():
    machine = Machine()
    fired = []
    machine.loop.call_after(5 * MSEC, lambda: fired.append(1))
    machine.crash()
    machine.boot()
    machine.run_for(50 * MSEC)
    assert fired == []


def test_crash_tears_inflight_device_writes():
    machine = Machine()
    machine.storage.submit_write(1 << 20, b"doomed")
    lost = machine.crash()
    assert lost == 1
    machine.boot()
    assert not machine.storage.has_extent(1 << 20)


def test_clock_survives_crashes():
    machine = Machine()
    t_before = machine.clock.now()
    machine.crash()
    machine.boot()
    assert machine.clock.now() > t_before  # boot time elapsed


def test_shutdown_drains_io():
    machine = Machine()
    machine.storage.submit_write(1 << 20, b"flushed")
    machine.shutdown()
    assert machine.storage.has_extent(1 << 20)


def test_running_kernel_guard():
    machine = Machine()
    machine.crash()
    with pytest.raises(MachineCrashed):
        machine.running_kernel()


def test_ram_is_reset_per_boot():
    machine = Machine(ram_bytes=1 * GiB)
    proc = machine.kernel.spawn("hog")
    addr = proc.vmspace.mmap(1000 * 4096)
    proc.vmspace.fill(addr, 1000, seed=1)
    used = machine.kernel.physmem.used_frames
    assert used >= 1000
    machine.crash()
    machine.boot()
    assert machine.kernel.physmem.used_frames < used
