"""The full checkpoint/restore matrix: every POSIX object type must
survive checkpoint → crash → reboot → restore with its semantics
intact (the heart of the paper)."""

import pytest

from repro import Machine, load_aurora
from repro.kernel.fs.file import O_CREAT, O_RDWR
from repro.kernel.ipc.kqueue import EVFILT_READ, KEvent
from repro.kernel.ipc.unixsock import ControlMessage
from repro.kernel.proc.signals import SIGCHLD, SIGSLSRESTORE, SIGTERM
from repro.units import PAGE_SIZE


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    group = sls.attach(proc, periodic=False)
    return machine, sls, proc, group


def crash_and_restore(machine, sls, group, ckpt_id=None, lazy=False):
    gid = group.group_id
    sls.checkpoint(group, sync=True)
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid, ckpt_id=ckpt_id, lazy=lazy, periodic=False)
    return sls2, result


# -- memory ---------------------------------------------------------------------------


def test_memory_contents_restored(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr + 5, b"precious bytes")
    _sls2, result = crash_and_restore(machine, sls, group)
    assert result.root.vmspace.read(addr + 5, 14) == b"precious bytes"


def test_incremental_chain_restores_latest(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    for version in range(5):
        proc.vmspace.write(addr, f"version-{version}".encode())
        sls.checkpoint(group, sync=True)
    _sls2, result = crash_and_restore(machine, sls, group)
    assert result.root.vmspace.read(addr, 9) == b"version-4"


def test_time_travel_to_named_checkpoint(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"early")
    early = sls.checkpoint(group, name="early", sync=True)
    proc.vmspace.write(addr, b"later")
    sls.checkpoint(group, sync=True)
    _sls2, result = crash_and_restore(machine, sls, group,
                                      ckpt_id=early.info.ckpt_id)
    assert result.root.vmspace.read(addr, 5) == b"early"


def test_lazy_restore_pages_in_on_demand(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(128 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 128, seed=7)
    proc.vmspace.write(addr, b"lazy!")
    _sls2, result = crash_and_restore(machine, sls, group, lazy=True)
    assert result.pages_restored == 0
    assert result.pages_lazy > 0
    # First touch faults the page in from the store.
    assert result.root.vmspace.read(addr, 5) == b"lazy!"
    assert machine.kernel.pageout.pageins >= 1


def test_lazy_restore_is_faster_than_full(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(2048 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 2048, seed=1)
    gid = group.group_id
    sls.checkpoint(group, sync=True)
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    t0 = machine.clock.now()
    full = sls2.restore(gid, periodic=False)
    full_time = full.elapsed_ns
    # Restore again lazily (fresh incarnation of the same image).
    for p in list(full.group.processes):
        full.group.remove_process(p)
        p.exit(0)
    sls2.groups.pop(full.group.group_id, None)
    lazy = sls2.restore(gid, lazy=True, periodic=False)
    assert lazy.elapsed_ns < full_time / 2


# -- processes, threads, IDs ------------------------------------------------------------------


def test_process_tree_and_groups_restored(setup):
    machine, sls, proc, group = setup
    child = machine.kernel.fork(proc, name="worker")
    grandchild = machine.kernel.fork(child, name="helper")
    _sls2, result = crash_and_restore(machine, sls, group)
    by_name = {p.name: p for p in result.processes}
    assert by_name["helper"].parent is by_name["worker"]
    assert by_name["worker"].parent is by_name["app"]
    assert by_name["worker"].pgroup.pgid == proc.pgroup.pgid


def test_pid_virtualization_on_conflict(setup):
    machine, sls, proc, group = setup
    original_pid = proc.pid
    gid = group.group_id
    sls.checkpoint(group, sync=True)
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    # Occupy the original pid before restoring.
    machine.kernel.spawn("squatter", pid=original_pid)
    result = sls2.restore(gid, periodic=False)
    restored = result.root
    assert restored.local_pid == original_pid     # app-visible id
    assert restored.pid != original_pid           # system-visible id
    assert result.group.idmap.to_global(original_pid) == restored.pid


def test_thread_state_restored(setup):
    machine, sls, proc, group = setup
    thread2 = proc.add_thread()
    thread2.cpu_state.regs["rip"] = 0xAAAA
    thread2.cpu_state.regs["rsp"] = 0xBBBB
    thread2.signals.block(SIGTERM)
    thread2.sched_priority = 90
    _sls2, result = crash_and_restore(machine, sls, group)
    restored = result.root.threads[1]
    assert restored.cpu_state.regs["rip"] == 0xAAAA
    assert restored.cpu_state.regs["rsp"] == 0xBBBB
    assert SIGTERM in restored.signals.mask
    assert restored.sched_priority == 90
    assert restored.local_tid == thread2.local_tid


def test_restore_signal_delivered(setup):
    machine, sls, proc, group = setup
    _sls2, result = crash_and_restore(machine, sls, group)
    assert SIGSLSRESTORE in result.root.main_thread.signals.pending


def test_ephemeral_child_gone_and_parent_notified(setup):
    """§3: ephemeral members are not persisted; after restore the
    parent sees SIGCHLD as if the child exited."""
    machine, sls, proc, group = setup
    worker = machine.kernel.fork(proc, name="scratch-worker")
    sls.mark_ephemeral(worker)
    _sls2, result = crash_and_restore(machine, sls, group)
    names = {p.name for p in result.processes}
    assert "scratch-worker" not in names
    assert SIGCHLD in result.root.main_thread.signals.pending


# -- descriptors -------------------------------------------------------------------------------------


def test_fd_sharing_preserved_across_restore(setup):
    """The §5.1 example end-to-end: fork-shared offsets stay shared,
    separate opens stay separate — after a reboot."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fd = kernel.open(proc, "/f", O_CREAT | O_RDWR)
    kernel.write(proc, fd, b"abcdefgh")
    kernel.lseek(proc, fd, 0)
    child = kernel.fork(proc)
    fd_other = kernel.open(proc, "/f", O_RDWR)  # independent OpenFile

    _sls2, result = crash_and_restore(machine, sls, group)
    by_name = {p.name: p for p in result.processes}
    parent2, child2 = by_name["app"], by_name["app-child"]
    kernel2 = machine.kernel
    assert kernel2.read(parent2, fd, 2) == b"ab"
    assert kernel2.read(child2, fd, 2) == b"cd"   # shared offset moved
    assert kernel2.read(parent2, fd_other, 4) == b"abcd"  # independent


def test_pipe_contents_restored(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    rfd, wfd = kernel.pipe(proc)
    kernel.write(proc, wfd, b"in flight")
    _sls2, result = crash_and_restore(machine, sls, group)
    assert machine.kernel.read(result.root, rfd, 9) == b"in flight"


def test_unix_socket_pair_restored_with_peer_link(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    lfd, rfd = kernel.socketpair(proc)
    kernel.sock_of(proc, lfd).send(b"queued message")
    _sls2, result = crash_and_restore(machine, sls, group)
    kernel2 = machine.kernel
    p2 = result.root
    right = kernel2.sock_of(p2, rfd)
    assert right.recv() == b"queued message"
    # Peer link works in both directions after restore.
    right.send(b"reply")
    assert kernel2.sock_of(p2, lfd).recv() == b"reply"


def test_inflight_fd_passing_restored(setup):
    """A descriptor sitting in a socket buffer at checkpoint time is
    chased and restored (§5.3 — CRIU's seven-year gap)."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    file_fd = kernel.open(proc, "/passed", O_CREAT | O_RDWR)
    kernel.write(proc, file_fd, b"ride along")
    lfd, rfd = kernel.socketpair(proc)
    kernel.sock_of(proc, lfd).sendmsg(
        b"fd attached", ControlMessage(files=[proc.fdtable.get(file_fd)]))

    _sls2, result = crash_and_restore(machine, sls, group)
    kernel2 = machine.kernel
    p2 = result.root
    message = kernel2.sock_of(p2, rfd).recvmsg()
    assert message.data == b"fd attached"
    received = message.control.files[0]
    newfd = p2.fdtable.install(received)
    kernel2.lseek(p2, newfd, 0)
    assert kernel2.read(p2, newfd, 10) == b"ride along"


def test_tcp_listener_restored_without_accept_queue(setup):
    """§5.3: the accept queue is omitted; a pending client looks like a
    dropped SYN, and new connections succeed."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    sfd = kernel.tcp_socket(proc)
    server = kernel.sock_of(proc, sfd)
    server.bind("10.0.0.1", 8080)
    server.listen()
    from repro.kernel.net.tcp import TCPSocket
    TCPSocket(kernel).connect("10.0.0.1", 8080)  # pending, unaccepted
    assert len(server.accept_queue) == 1

    _sls2, result = crash_and_restore(machine, sls, group)
    kernel2 = machine.kernel
    restored = kernel2.sock_of(result.root, sfd)
    assert restored.state == "listen"
    assert restored.accept_queue == []  # SYN dropped
    # The client retries and gets through.
    TCPSocket(kernel2).connect("10.0.0.1", 8080)
    assert len(restored.accept_queue) == 1


def test_tcp_established_state_restored(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    sfd = kernel.tcp_socket(proc)
    server = kernel.sock_of(proc, sfd)
    server.bind("10.0.0.1", 9000)
    server.listen()
    cfd = kernel.tcp_socket(proc)
    client = kernel.sock_of(proc, cfd)
    client.laddr, client.lport = "10.0.0.1", 55555
    client.connect("10.0.0.1", 9000)
    afd = kernel.accept(proc, sfd)
    client.send(b"unread")
    seq = client.snd_nxt

    _sls2, result = crash_and_restore(machine, sls, group)
    kernel2 = machine.kernel
    p2 = result.root
    client2 = kernel2.sock_of(p2, cfd)
    accepted2 = kernel2.sock_of(p2, afd)
    assert client2.state == "established"
    assert client2.snd_nxt == seq
    assert client2.five_tuple() == ("tcp", "10.0.0.1", 55555,
                                    "10.0.0.1", 9000)
    assert accepted2.recv(6) == b"unread"  # buffered data survived


def test_udp_socket_restored(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    ufd = kernel.udp_socket(proc)
    sock = kernel.sock_of(proc, ufd)
    sock.bind("10.0.0.1", 5353)
    sock.enqueue(("10.9.9.9", 1000), b"datagram")
    _sls2, result = crash_and_restore(machine, sls, group)
    restored = machine.kernel.sock_of(result.root, ufd)
    assert (restored.laddr, restored.lport) == ("10.0.0.1", 5353)
    payload, source = restored.recvfrom()
    assert payload == b"datagram"
    assert source == ("10.9.9.9", 1000)


def test_kqueue_events_restored(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    kqfd = kernel.kqueue(proc)
    kq = proc.fdtable.get(kqfd).fobj
    for ident in range(10):
        kq.register(KEvent(ident, EVFILT_READ, udata=ident * 7))
    _sls2, result = crash_and_restore(machine, sls, group)
    restored = result.root.fdtable.get(kqfd).fobj
    assert len(restored) == 10
    assert {e.udata for e in restored.events()} == {i * 7
                                                    for i in range(10)}


def test_pty_restored(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    mfd, sfd = kernel.open_pty(proc)
    pty = proc.fdtable.get(mfd).fobj
    pty.set_winsize(50, 132)
    pty.master_write(b"pending input")
    _sls2, result = crash_and_restore(machine, sls, group)
    restored = result.root.fdtable.get(mfd).fobj
    assert restored.termios["rows"] == 50
    assert restored.slave_read(13) == b"pending input"
    # Both fds reference the same restored pty.
    assert result.root.fdtable.get(sfd).fobj is restored


def test_posix_shm_restored_shared(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    shmfd = kernel.shm_open(proc, "/seg", 4 * PAGE_SIZE)
    addr = kernel.shm_mmap(proc, shmfd)
    child = kernel.fork(proc)
    proc.vmspace.write(addr, b"both see this")
    _sls2, result = crash_and_restore(machine, sls, group)
    by_name = {p.name: p for p in result.processes}
    p2, c2 = by_name["app"], by_name["app-child"]
    assert p2.vmspace.read(addr, 13) == b"both see this"
    # Sharing is live, not a copy.
    p2.vmspace.write(addr, b"BOTH")
    assert c2.vmspace.read(addr, 4) == b"BOTH"
    # The registry knows the segment again.
    assert "/seg" in machine.kernel.posix_shm.names()


def test_sysv_shm_restored(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    shmid = kernel.shmget(0xBEEF, 2 * PAGE_SIZE)
    addr = kernel.shmat(proc, shmid)
    proc.vmspace.write(addr, b"sysv data")
    _sls2, result = crash_and_restore(machine, sls, group)
    assert result.root.vmspace.read(addr, 9) == b"sysv data"
    # The key is findable again in the global namespace.
    new_id = machine.kernel.shmget(0xBEEF, 2 * PAGE_SIZE, create=False)
    seg = machine.kernel.sysv_shm.segment(new_id)
    assert seg.size == 2 * PAGE_SIZE


def test_vdso_reinjected_from_new_boot(setup):
    """§5.3: restore injects the *current* platform's vDSO."""
    machine, sls, proc, group = setup
    vdso_addr = machine.kernel.vdso.inject(proc.vmspace)
    old_seed = machine.kernel.vdso.content_seed()
    _sls2, result = crash_and_restore(machine, sls, group)
    new_kernel = machine.kernel
    assert new_kernel.vdso.content_seed() != old_seed
    entry = result.root.vmspace.entry_at(vdso_addr)
    assert entry.vmobject is new_kernel.vdso.vmobject


def test_fork_cow_backing_chain_survives_restore(setup):
    """§6 'Checkpointing the VM': the object hierarchy is persisted,
    so parent/child COW sharing is a chain again after restore."""
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"shared page")
    child = machine.kernel.fork(proc)
    proc.vmspace.write(addr + PAGE_SIZE, b"parent-dirty")
    _sls2, result = crash_and_restore(machine, sls, group)
    by_name = {p.name: p for p in result.processes}
    p2, c2 = by_name["app"], by_name["app-child"]
    assert p2.vmspace.read(addr, 11) == b"shared page"
    assert c2.vmspace.read(addr, 11) == b"shared page"
    assert c2.vmspace.read(addr + PAGE_SIZE, 12) == b"\x00" * 12
    assert p2.vmspace.read(addr + PAGE_SIZE, 12) == b"parent-dirty"
    # COW still isolates them going forward.
    p2.vmspace.write(addr, b"PARENT-ONLY")
    assert c2.vmspace.read(addr, 11) == b"shared page"
