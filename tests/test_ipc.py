"""IPC objects: pipes, UNIX sockets (+fd passing), shm, kqueue, pty,
devices."""

import pytest

from repro.errors import (BrokenPipe, ConnectionRefused, NoSuchFile,
                          PermissionDenied, WouldBlock)
from repro.kernel.ipc.devfs import DeviceFile, VDSO
from repro.kernel.ipc.kqueue import EVFILT_READ, EVFILT_TIMER, KEvent
from repro.kernel.ipc.unixsock import ControlMessage, UnixSocket
from repro.machine import Machine
from repro.units import PAGE_SIZE


@pytest.fixture
def kernel():
    return Machine().kernel


@pytest.fixture
def proc(kernel):
    return kernel.spawn("app")


# -- pipes -------------------------------------------------------------------------


def test_pipe_write_read(kernel, proc):
    rfd, wfd = kernel.pipe(proc)
    kernel.write(proc, wfd, b"through the pipe")
    assert kernel.read(proc, rfd, 16) == b"through the pipe"


def test_pipe_empty_read_blocks(kernel, proc):
    rfd, _wfd = kernel.pipe(proc)
    with pytest.raises(WouldBlock):
        kernel.read(proc, rfd, 1)


def test_pipe_eof_after_writer_closes(kernel, proc):
    rfd, wfd = kernel.pipe(proc)
    pipe = proc.fdtable.get(wfd).fobj
    kernel.write(proc, wfd, b"last")
    pipe.close_write()
    assert kernel.read(proc, rfd, 10) == b"last"
    assert kernel.read(proc, rfd, 10) == b""  # EOF


def test_pipe_broken_when_no_readers(kernel, proc):
    _rfd, wfd = kernel.pipe(proc)
    pipe = proc.fdtable.get(wfd).fobj
    pipe.close_read()
    with pytest.raises(BrokenPipe):
        kernel.write(proc, wfd, b"x")


def test_pipe_shared_across_fork(kernel, proc):
    rfd, wfd = kernel.pipe(proc)
    child = kernel.fork(proc)
    kernel.write(child, wfd, b"from child")
    assert kernel.read(proc, rfd, 10) == b"from child"


# -- UNIX sockets ----------------------------------------------------------------------


def test_socketpair_transfer(kernel, proc):
    lfd, rfd = kernel.socketpair(proc)
    left = kernel.sock_of(proc, lfd)
    right = kernel.sock_of(proc, rfd)
    left.send(b"ping")
    assert right.recv() == b"ping"
    right.send(b"pong")
    assert left.recv() == b"pong"


def test_unix_bind_listen_connect(kernel, proc):
    server = UnixSocket(kernel)
    server.bind("/tmp/sock")
    server.listen()
    client = UnixSocket(kernel)
    client.connect("/tmp/sock")
    accepted = server.accept()
    client.send(b"hello server")
    assert accepted.recv() == b"hello server"


def test_unix_connect_refused_without_listener(kernel):
    client = UnixSocket(kernel)
    with pytest.raises(ConnectionRefused):
        client.connect("/nope")


def test_fd_passing_over_unix_socket(kernel, proc):
    """SCM_RIGHTS: a descriptor rides the socket buffer; the receiver
    installs it and shares the OpenFile (offset included)."""
    fd = kernel.open(proc, "/passed", 0x40 | 0x2)
    kernel.write(proc, fd, b"payload")
    file = proc.fdtable.get(fd)

    lfd, rfd = kernel.socketpair(proc)
    left = kernel.sock_of(proc, lfd)
    right = kernel.sock_of(proc, rfd)
    left.sendmsg(b"here's a file", ControlMessage(files=[file]))
    assert right.inflight_files() == [file]

    message = right.recvmsg()
    received = message.control.files[0]
    other = kernel.spawn("receiver")
    newfd = other.fdtable.install(received)
    received.unref()  # message's reference handed to the table
    kernel.lseek(other, newfd, 0)
    assert kernel.read(other, newfd, 7) == b"payload"


def test_unix_buffer_full(kernel):
    left, right = UnixSocket.socketpair(kernel)
    right.options["SO_RCVBUF"] = 8
    left.send(b"12345678")
    with pytest.raises(WouldBlock):
        left.send(b"x")


# -- shared memory ---------------------------------------------------------------------------


def test_posix_shm_shared_between_processes(kernel, proc):
    fd = kernel.shm_open(proc, "/seg", 4 * PAGE_SIZE)
    addr = kernel.shm_mmap(proc, fd)
    other = kernel.spawn("other")
    fd2 = kernel.shm_open(other, "/seg", 4 * PAGE_SIZE)
    addr2 = kernel.shm_mmap(other, fd2)
    proc.vmspace.write(addr, b"shared!")
    assert other.vmspace.read(addr2, 7) == b"shared!"


def test_posix_shm_unlink(kernel, proc):
    kernel.shm_open(proc, "/gone", PAGE_SIZE)
    kernel.posix_shm.unlink("/gone")
    with pytest.raises(NoSuchFile):
        kernel.posix_shm.open("/gone", create=False)


def test_sysv_shm_key_lookup(kernel, proc):
    shmid = kernel.shmget(0x1234, 2 * PAGE_SIZE)
    assert kernel.shmget(0x1234, 2 * PAGE_SIZE) == shmid
    addr = kernel.shmat(proc, shmid)
    other = kernel.spawn("other")
    addr2 = kernel.shmat(other, shmid)
    proc.vmspace.write(addr, b"sysv")
    assert other.vmspace.read(addr2, 4) == b"sysv"


def test_sysv_rmid(kernel):
    shmid = kernel.shmget(0x99, PAGE_SIZE)
    kernel.sysv_shm.shmctl_rmid(shmid)
    with pytest.raises(NoSuchFile):
        kernel.sysv_shm.segment(shmid)


def test_shm_backmap_tracks_object(kernel, proc):
    fd = kernel.shm_open(proc, "/bm", PAGE_SIZE)
    segment = proc.fdtable.get(fd).fobj
    assert kernel.shm_backmap[segment.vmobject.kid] is segment
    from repro.kernel.vm.vmobject import VMObject
    new_obj = VMObject(kernel, 1)
    old_kid = segment.vmobject.kid
    segment.replace_object(new_obj)
    assert old_kid not in kernel.shm_backmap
    assert kernel.shm_backmap[new_obj.kid] is segment


# -- kqueue ---------------------------------------------------------------------------------------


def test_kqueue_register_trigger_collect(kernel, proc):
    kqfd = kernel.kqueue(proc)
    kq = proc.fdtable.get(kqfd).fobj
    kq.register(KEvent(5, EVFILT_READ))
    kq.register(KEvent(1, EVFILT_TIMER, udata=42))
    assert len(kq) == 2
    kq.trigger(5, EVFILT_READ, data=100)
    events = kq.collect()
    assert len(events) == 1
    assert events[0].ident == 5 and events[0].data == 100


def test_kqueue_deregister(kernel, proc):
    kqfd = kernel.kqueue(proc)
    kq = proc.fdtable.get(kqfd).fobj
    kq.register(KEvent(5, EVFILT_READ))
    kq.deregister(5, EVFILT_READ)
    kq.trigger(5, EVFILT_READ)
    assert kq.collect() == []


# -- pseudoterminals ----------------------------------------------------------------------------------


def test_pty_echo_and_transfer(kernel, proc):
    mfd, sfd = kernel.open_pty(proc)
    pty = proc.fdtable.get(mfd).fobj
    pty.master_write(b"ls\n")
    assert pty.slave_read(10) == b"ls\n"
    assert pty.master_read(10) == b"ls\n"  # echo
    pty.termios["echo"] = False
    pty.master_write(b"x")
    assert pty.master_read(10) == b""


def test_pty_winsize(kernel, proc):
    mfd, _sfd = kernel.open_pty(proc)
    pty = proc.fdtable.get(mfd).fobj
    pty.set_winsize(50, 120)
    assert pty.termios["rows"] == 50
    assert pty.termios["cols"] == 120


# -- devices --------------------------------------------------------------------------------------------


def test_device_whitelist_enforced(kernel):
    with pytest.raises(PermissionDenied):
        DeviceFile(kernel, "gpu0")


def test_null_and_zero_devices(kernel, proc):
    zfd = kernel.open_device(proc, "zero")
    assert kernel.read(proc, zfd, 4) == b"\x00" * 4
    nfd = kernel.open_device(proc, "null")
    assert kernel.write(proc, nfd, b"discard") == 7


def test_hpet_mapped_read_only(kernel, proc):
    from repro.errors import SegmentationFault
    addr = kernel.map_hpet(proc)
    proc.vmspace.read(addr, 8)  # readable
    with pytest.raises(SegmentationFault):
        proc.vmspace.write(addr, b"x")


def test_vdso_differs_per_boot():
    machine = Machine()
    seed1 = machine.kernel.vdso.content_seed()
    machine.crash()
    machine.boot()
    seed2 = machine.kernel.vdso.content_seed()
    assert seed1 != seed2
