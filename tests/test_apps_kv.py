"""Redis and Memcached application models."""

import pytest

from repro import Machine, load_aurora
from repro.apps.memcached import MemcachedServer
from repro.apps.redis import RedisServer
from repro.baselines.criu import CRIUCheckpointer
from repro.errors import NoSuchFile
from repro.units import MiB, MSEC, SEC, USEC, pages_of


# -- Redis -------------------------------------------------------------------------


def test_redis_set_get():
    machine = Machine()
    server = RedisServer(machine.kernel)
    server.set("user:1", b"alice")
    server.set("user:2", b"bob")
    assert server.get("user:1") == b"alice"
    assert server.get("user:2") == b"bob"
    with pytest.raises(NoSuchFile):
        server.get("user:3")


def test_redis_synthetic_population():
    machine = Machine()
    server = RedisServer(machine.kernel, heap_bytes=600 * MiB)
    keys = server.populate_synthetic(500 * MiB, value_size=4096)
    assert keys == (500 * MiB) // 4096
    assert server.resident_pages() >= pages_of(500 * MiB)


def test_redis_bgsave_fork_cost_scales_with_resident_set():
    def fork_time(size_mib):
        machine = Machine()
        server = RedisServer(machine.kernel, heap_bytes=600 * MiB)
        server.populate_synthetic(size_mib * MiB)
        return server.bgsave().fork_stop_ns

    small = fork_time(50)
    large = fork_time(500)
    assert 5 * small < large < 20 * small


def test_redis_bgsave_500mib_matches_table7():
    """Table 7: RDB stop ~8 ms, IO ~300 ms for 500 MiB."""
    machine = Machine()
    server = RedisServer(machine.kernel, heap_bytes=600 * MiB)
    server.populate_synthetic(500 * MiB)
    report = server.bgsave()
    assert 4 * MSEC <= report.fork_stop_ns <= 16 * MSEC
    assert 200 * MSEC <= report.io_write_ns <= 450 * MSEC


def test_redis_save_blocks_for_full_duration():
    machine = Machine()
    server = RedisServer(machine.kernel)
    server.populate_synthetic(10 * MiB)
    t0 = machine.kernel.clock.now()
    report = server.save()
    assert machine.kernel.clock.now() - t0 == report.total_ns


def test_redis_under_aurora_restores_data():
    machine = Machine()
    sls = load_aurora(machine)
    server = RedisServer(machine.kernel)
    group = sls.attach(server.proc, periodic=False)
    server.set("key", b"value-before-crash")
    sls.checkpoint(group, sync=True)
    layout = dict(server._layout)
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    offset, length = layout["key"]
    heap = server.heap
    assert result.root.vmspace.read(heap + offset, length) \
        == b"value-before-crash"


# -- Memcached -------------------------------------------------------------------------


def test_memcached_set_get():
    machine = Machine()
    server = MemcachedServer(machine.kernel)
    server.set("k", b"v")
    assert server.get("k") == b"v"
    with pytest.raises(NoSuchFile):
        server.get("missing")


def test_memcached_baseline_throughput_near_calibration():
    """§9.5 baseline: ~1.1 M ops/s at saturation."""
    machine = Machine()
    server = MemcachedServer(machine.kernel)
    stats = server.run_closed_loop(machine, outstanding=576,
                                   duration_ns=200 * MSEC)
    assert 0.9e6 <= stats.throughput <= 1.4e6


def test_memcached_throughput_rises_with_period():
    """Figure 4's main shape: fewer checkpoints, more throughput."""
    def run(period_ms):
        machine = Machine()
        sls = load_aurora(machine)
        server = MemcachedServer(machine.kernel)
        sls.attach(server.proc, period_ns=period_ms * MSEC)
        return server.run_closed_loop(machine, 576, 300 * MSEC).throughput

    t10 = run(10)
    t100 = run(100)
    assert t100 > 1.5 * t10


def test_memcached_open_loop_latency_baseline():
    """Figure 5 baseline: ~157 us average at 120 k ops/s."""
    machine = Machine()
    server = MemcachedServer(machine.kernel)
    stats = server.run_open_loop(machine, 120_000, 300 * MSEC)
    assert stats.latency_avg_ns < 400 * USEC
    assert abs(stats.throughput - 120_000) / 120_000 < 0.1


def test_memcached_dirty_page_saturation():
    """Within one period the dirty set saturates at the hot set: the
    first post-checkpoint touch of each page faults, re-touches are
    free."""
    machine = Machine()
    sls = load_aurora(machine)
    server = MemcachedServer(machine.kernel)
    group = sls.attach(server.proc, periodic=False)
    sls.checkpoint(group, sync=True)  # write-protects the hot set
    first = server._dirty_pages(server.hot_pages)
    again = server._dirty_pages(server.hot_pages)
    assert first == server.hot_pages  # every page COW-faults once
    assert again == 0                 # already writable this period


# -- CRIU on Redis (Table 1) ------------------------------------------------------------------


def test_criu_breakdown_on_500mib_redis():
    """Table 1: OS state ~49 ms, memory ~413 ms, total ~462 ms,
    IO ~350 ms."""
    machine = Machine()
    server = RedisServer(machine.kernel, heap_bytes=600 * MiB)
    server.populate_synthetic(500 * MiB)
    report = CRIUCheckpointer(machine.kernel).checkpoint(server.proc)
    assert 30 * MSEC <= report.os_state_ns <= 80 * MSEC
    assert 300 * MSEC <= report.memory_copy_ns <= 550 * MSEC
    assert 350 * MSEC <= report.total_stop_ns <= 620 * MSEC
    assert 250 * MSEC <= report.io_write_ns <= 480 * MSEC


def test_criu_stop_time_dwarfs_aurora():
    """Table 7's headline: Aurora's stop time is ~100x lower."""
    machine = Machine()
    sls = load_aurora(machine)
    server = RedisServer(machine.kernel, heap_bytes=600 * MiB)
    server.populate_synthetic(500 * MiB)
    group = sls.attach(server.proc, periodic=False)
    sls.checkpoint(group, sync=True)          # base
    server.proc.vmspace.touch(server.heap, 1024, seed=9)
    aurora_res = sls.checkpoint(group, full=True, sync=True)

    machine2 = Machine()
    server2 = RedisServer(machine2.kernel, heap_bytes=600 * MiB)
    server2.populate_synthetic(500 * MiB)
    criu = CRIUCheckpointer(machine2.kernel).checkpoint(server2.proc)
    assert criu.total_stop_ns > 20 * aurora_res.stop_ns


def test_criu_queries_every_object():
    machine = Machine()
    kernel = machine.kernel
    proc = kernel.spawn("app")
    for i in range(10):
        kernel.open(proc, f"/f{i}", 0x40)
    report = CRIUCheckpointer(kernel).checkpoint(proc)
    assert report.objects_queried >= 10
    assert report.sharing_comparisons > 0
