"""Nemesis harness entry point (re-export).

The engine lives in :mod:`repro.core.nemesis` so the ``sls nemesis``
CLI can reach it without importing the test tree; this module is the
test-side face of the same campaigns.
"""

from __future__ import annotations

from repro.core.nemesis import (AZS, CAMPAIGNS, NODES, CampaignResult,
                                NemesisFixture, run_all, run_campaign)

__all__ = ["AZS", "CAMPAIGNS", "NODES", "CampaignResult",
           "NemesisFixture", "run_all", "run_campaign"]
