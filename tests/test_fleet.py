"""The fleet control plane: EDF scheduling, admission control,
backpressure, and per-tenant isolation (core/fleet.py).

Covers the control-plane contract directly: one armed loop timer for
any number of tenants, deadlines dispatched earliest-first, admission
refusing or widening over-subscribed arrivals, backpressure reacting
to both estimated aggregates and observed deadline misses, detach
leaving in-flight flushes orphaned but harmless, and one tenant's
ENOSPC-degraded spell leaving every other tenant inside its RPO
budget.
"""

import pytest

from repro import Machine, load_aurora
from repro.core import events, resilience, telemetry
from repro.core.fleet import (ADMIT_REJECT, MAX_WIDEN_FACTOR,
                              van_der_corput)
from repro.errors import AdmissionRejected, InvalidArgument
from repro.units import GiB, KiB, MSEC, MiB, PAGE_SIZE, SEC


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.reset()
    events.log().reset()
    yield
    telemetry.reset()


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    return machine, sls


def make_tenant(machine, sls, name, period_ms=10, pages=8, **attach_kw):
    proc = machine.kernel.spawn(name)
    addr = proc.vmspace.mmap(pages * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, pages, seed=hash(name) & 0xFFFF)
    group = sls.attach(proc, name=name, period_ns=period_ms * MSEC,
                       **attach_kw)
    return proc, group, addr


# -- EDF queue ---------------------------------------------------------------


def test_one_timer_serves_many_tenants(setup):
    """The whole fleet shares a single armed loop event."""
    machine, sls = setup
    for index in range(10):
        make_tenant(machine, sls, f"t{index}", period_ms=10 + index)
    live = [e for e in machine.loop._heap
            if not e.cancelled and e.callback.__name__ == "_fire"]
    assert len(live) == 1
    assert sls.fleet.next_deadline() == live[0].when


def test_edf_dispatches_earliest_deadline_first(setup):
    machine, sls = setup
    _pa, fast, _aa = make_tenant(machine, sls, "fast", period_ms=10)
    _pb, slow, _ab = make_tenant(machine, sls, "slow", period_ms=40)
    machine.run_for(80 * MSEC)
    assert fast.dispatches > 2 * slow.dispatches
    assert slow.dispatches >= 1
    assert fast.deadline_misses == 0 and slow.deadline_misses == 0


def test_stagger_is_low_discrepancy_and_first_tenant_unshifted():
    """Admission k phases its first deadline by vdc(k) · period: the
    first tenant keeps the legacy now+period tick, later tenants
    spread across the period instead of thundering together."""
    assert van_der_corput(0) == 0.0
    phases = [van_der_corput(k) for k in range(8)]
    assert len(set(phases)) == 8
    assert all(0.0 <= p < 1.0 for p in phases)
    # Bit reversal: the second arrival lands mid-period.
    assert van_der_corput(1) == 0.5


def test_cancelling_last_timer_disarms_the_loop(setup):
    machine, sls = setup
    _p, group, _a = make_tenant(machine, sls, "only")
    group.timer.cancel()
    assert sls.fleet.next_deadline() is None
    # The loop drains: nothing periodic survives the eviction.
    machine.loop.drain()
    assert events.log().matching(events.FLEET_EVICT)


def test_fleet_timer_compat_handle(setup):
    """group.timer keeps the legacy cancel()/cancelled surface."""
    machine, sls = setup
    _p, group, _a = make_tenant(machine, sls, "compat")
    assert group.timer is not None
    assert not group.timer.cancelled
    group.timer.cancel()
    assert group.timer.cancelled


# -- admission control -------------------------------------------------------


def test_admission_rejects_oversubscribed_demand(setup):
    machine, sls = setup
    proc = machine.kernel.spawn("hog")
    proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    with pytest.raises(AdmissionRejected):
        sls.attach(proc, name="hog", period_ns=10 * MSEC,
                   demand_bytes_per_sec=100 * GiB,
                   admission=ADMIT_REJECT)
    # The attach unwound completely: no group, no timer, no proc link.
    assert not sls.groups
    assert proc.sls_group is None
    assert events.log().matching(events.ADMISSION_REJECT)
    assert sls.fleet.next_deadline() is None


def test_admission_widens_instead_when_policy_allows(setup):
    machine, sls = setup
    _p, group, _a = make_tenant(machine, sls, "elastic",
                                demand_bytes_per_sec=8 * GiB)
    assert group.backpressure_factor > 1
    assert group.backpressure_factor <= MAX_WIDEN_FACTOR
    widens = events.log().matching(events.BACKPRESSURE)
    assert widens and widens[0].fields["action"] == "admit_widen"
    # The widened effective period is what the EDF queue schedules.
    assert sls.fleet.effective_period(group) == \
        group.period_ns * group.backpressure_factor


def test_admission_reject_policy_refuses_unwidenable_demand(setup):
    """Demand that even the maximum widen cannot fit is refused under
    either policy."""
    machine, sls = setup
    proc = machine.kernel.spawn("impossible")
    proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    with pytest.raises(AdmissionRejected):
        sls.attach(proc, name="impossible", period_ns=10 * MSEC,
                   demand_bytes_per_sec=100 * 1024 * GiB)


def test_probe_every_is_validated_and_surfaced(setup):
    machine, sls = setup
    proc = machine.kernel.spawn("badprobe")
    proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    with pytest.raises(InvalidArgument):
        sls.attach(proc, name="badprobe", period_ns=10 * MSEC,
                    probe_every=0)
    _p, group, _a = make_tenant(machine, sls, "probed", probe_every=3)
    assert group.probe_every == 3
    row = next(r for r in sls.fleet.report()
               if r["group"] == group.group_id)
    assert row["probe_every"] == 3
    # Default comes from the named constant, not a magic number.
    _p2, other, _a2 = make_tenant(machine, sls, "defaulted")
    assert other.probe_every == resilience.DEFAULT_PROBE_EVERY


# -- backpressure ------------------------------------------------------------


def test_backpressure_widens_largest_tenant_then_relaxes(setup):
    machine, sls = setup
    tenants = [make_tenant(machine, sls, f"t{i}", period_ms=10)
               for i in range(3)]
    _p, offender, _a = tenants[0]
    # A measured demand far over capacity: the periodic check must
    # stretch the offender (largest share pays), not its neighbours.
    offender.demand_bytes_per_ckpt = 1 << 40
    machine.run_for(120 * MSEC)
    assert offender.backpressure_factor > 1
    for _p2, other, _a2 in tenants[1:]:
        assert other.backpressure_factor == 1
    # Demand subsides: the controller relaxes the widen again.
    offender.demand_bytes_per_ckpt = 4 * KiB
    machine.run_for(600 * MSEC)
    assert offender.backpressure_factor == 1
    actions = [e.fields["action"]
               for e in events.log().matching(events.BACKPRESSURE)]
    assert "widen" in actions and "relax" in actions


def test_deadline_misses_are_counted_and_fed_back(setup):
    """A dispatch later than the slack counts as a miss, emits the
    event, and the controller reacts even when the utilization
    estimates still claim headroom."""
    machine, sls = setup
    _p, group, _a = make_tenant(machine, sls, "missy", period_ms=10)
    fleet = sls.fleet
    entry = fleet._entries[group.group_id]
    # Arm a deadline in the past — beyond the period/4 slack.
    machine.clock.advance(20 * MSEC)
    fleet._dispatch(entry, machine.clock.now() - 8 * MSEC)
    assert group.deadline_misses == 1
    miss_events = events.log().matching(events.DEADLINE_MISS)
    assert miss_events and miss_events[0].fields["lateness_ns"] > 0
    # The observed miss alone drives one widen round at the next check.
    fleet._backpressure_check()
    assert group.backpressure_factor > 1


# -- satellite: detach during an in-flight flush -----------------------------


def _dirty_heap(proc, pages):
    addr = proc.vmspace.mmap(pages * PAGE_SIZE, name="bulk")
    proc.vmspace.fill(addr, pages, seed=7)
    return addr


def test_detach_with_flush_in_flight_completes_harmlessly(setup):
    """The regression: a flush that outlives detach must neither
    resurrect the group's SLO series nor fire another tick."""
    machine, sls = setup
    proc = machine.kernel.spawn("leaver")
    _dirty_heap(proc, 4096)  # 16 MiB: the flush outlives the period
    group = sls.attach(proc, name="leaver", period_ns=10 * MSEC)
    machine.run_for(11 * MSEC)
    assert group.flush_in_progress
    sls.detach(group)
    assert not group.attached and group.timer is None
    slo_state = sls.slo.groups.get(group.group_id)
    samples_before = len(slo_state.rpo_lag.values) if slo_state else 0
    machine.loop.drain()
    # The orphaned flush either landed or aborted, but the group saw
    # no further scheduling and the SLO tracker no post-detach commit.
    assert not group.flush_in_progress
    slo_state = sls.slo.groups.get(group.group_id)
    samples_after = len(slo_state.rpo_lag.values) if slo_state else 0
    assert samples_after == samples_before
    assert group.dispatches <= 2
    assert sls.fleet.next_deadline() is None


def test_orphaned_flush_failure_skips_degraded_entry(setup):
    """A flush failing after detach reports CKPT_FAIL with the
    detached marker and must not push the dead group into degraded
    mode or emergency GC."""
    machine, sls = setup
    proc = machine.kernel.spawn("ghost")
    _dirty_heap(proc, 64)
    group = sls.attach(proc, name="ghost", period_ns=10 * MSEC)
    sls.detach(group)
    from repro.errors import NoSpace
    sls.rollback_failed_checkpoint(group, None,
                                   error=NoSpace("store full"))
    fails = events.log().matching(events.CKPT_FAIL)
    assert fails and fails[-1].fields["detached"] is True
    assert not group.health.degraded
    assert not events.log().matching(events.GC_EMERGENCY)


# -- per-tenant degraded isolation -------------------------------------------


def test_enospc_tenant_does_not_drag_down_neighbours():
    """The acceptance criterion: one tenant driven ENOSPC-degraded on
    a nearly-full store leaves every other tenant checkpointing inside
    its RPO budget, with zero deadline misses of its own."""
    telemetry.reset()
    events.log().reset()
    machine = Machine(capacity_per_device=1 * MiB)
    sls = load_aurora(machine)

    victims = []
    for index in range(3):
        proc = machine.kernel.spawn(f"victim{index}")
        addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
        group = sls.attach(proc, name=f"victim{index}",
                           period_ns=10 * MSEC, history_limit=2,
                           rpo_budget_ns=40 * MSEC)
        victims.append((proc, group, addr))

    offender_proc = machine.kernel.spawn("offender")
    offender_addr = offender_proc.vmspace.mmap(256 * PAGE_SIZE,
                                               name="heap")
    offender = sls.attach(offender_proc, name="offender",
                          period_ns=10 * MSEC, probe_every=8)

    entered = False
    for step in range(60):
        offender_proc.vmspace.fill(offender_addr, 160, seed=step)
        for vindex, (proc, _group, addr) in enumerate(victims):
            proc.vmspace.write(addr, b"v:%d:%d" % (vindex, step))
        machine.run_for(10 * MSEC)
        if offender.health.degraded:
            entered = True
        if entered and step > 40:
            break
    assert entered, "offender never entered ENOSPC degradation"

    for _proc, group, _addr in victims:
        assert not group.health.degraded
        assert group.deadline_misses == 0
        assert group.stats["checkpoints"] >= 10
        row = sls.slo.report(group.group_id)[0]
        assert row["rpo_violations"] == 0
        assert row["rpo_lag"]["p99"] <= 40 * MSEC
    # The degraded offender stops booking store bandwidth while
    # memory-only, so the admission picture shrinks with it.
    if offender.health.degraded:
        assert sls.fleet._demand_bps(offender) == 0
    telemetry.reset()


# -- reporting ---------------------------------------------------------------


def test_fleet_report_and_summary_fields(setup):
    machine, sls = setup
    make_tenant(machine, sls, "a", period_ms=10)
    make_tenant(machine, sls, "b", period_ms=20)
    machine.run_for(100 * MSEC)
    rows = sls.fleet.report()
    assert len(rows) == 2
    for row in rows:
        for key in ("group", "name", "period_ns", "effective_period_ns",
                    "backpressure_factor", "demand_bps", "demand_share",
                    "dispatches", "checkpoints", "deadline_misses",
                    "flush_skips", "degraded", "probe_every",
                    "deadline_ns"):
            assert key in row, key
        assert row["dispatches"] > 0
    summary = sls.fleet.summary()
    assert summary["tenants"] == 2
    assert summary["capacity_bps"] > 0
    assert 0 <= summary["time_util"] < 1
    assert summary["deadline_misses"] == 0
    assert 0.9 <= summary["fairness"]["jain"] <= 1.0


def test_fairness_normalizes_by_period(setup):
    """Raw p99 RPO lag scales with the period; the fleet metric
    normalizes so a mixed fleet is not unfair by construction."""
    machine, sls = setup
    tenants = []
    for index, period in enumerate((10, 20, 40)):
        tenants.append(make_tenant(machine, sls, f"mix{index}",
                                   period_ms=period, pages=4))
    for step in range(40):
        for proc, _group, addr in tenants:
            proc.vmspace.write(addr, b"step:%d" % step)
        machine.run_for(10 * MSEC)
    groups = [group.group_id for _p, group, _a in tenants]
    raw = sls.slo.fleet_fairness(groups)
    normalized = sls.slo.fleet_fairness(
        groups, normalize={group.group_id: group.period_ns
                           for _p, group, _a in tenants})
    assert normalized["jain"] >= raw["jain"]
    assert normalized["jain"] >= 0.9
