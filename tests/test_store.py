"""The object store: OIDs, allocation, commits, merged views, GC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (InvalidArgument, NoSuchCheckpoint, StoreError,
                          StoreFull)
from repro.hw.memory import Page
from repro.machine import Machine
from repro.objstore.blockalloc import ExtentAllocator
from repro.objstore.oid import (CLASS_MEMORY, CLASS_POSIX, OIDAllocator,
                                make_oid, oid_class, oid_serial)
from repro.objstore.store import ObjectStore
from repro.units import KiB, MiB, PAGE_SIZE, STRIPE_SIZE

MEM_OID = make_oid(CLASS_MEMORY, 500)
POSIX_OID = make_oid(CLASS_POSIX, 501)


@pytest.fixture
def store():
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    return store


# -- OIDs ----------------------------------------------------------------------


def test_oid_encoding_round_trip():
    oid = make_oid(CLASS_MEMORY, 12345)
    assert oid_class(oid) == CLASS_MEMORY
    assert oid_serial(oid) == 12345


def test_oid_allocator_monotonic():
    alloc = OIDAllocator()
    a = alloc.allocate(CLASS_POSIX)
    b = alloc.allocate(CLASS_MEMORY)
    assert oid_serial(b) == oid_serial(a) + 1


def test_oid_rejects_bad_class():
    with pytest.raises(InvalidArgument):
        make_oid(0x7F, 1)


# -- extent allocator ------------------------------------------------------------------


def test_alloc_is_aligned_and_disjoint():
    alloc = ExtentAllocator(16 * MiB)
    offsets = [alloc.alloc(5000) for _ in range(10)]
    assert all(off % (4 * KiB) == 0 for off in offsets)
    assert len(set(offsets)) == 10


def test_free_and_reuse():
    alloc = ExtentAllocator(16 * MiB)
    first = alloc.alloc(8 * KiB)
    alloc.alloc(8 * KiB)
    alloc.free(first, 8 * KiB)
    assert alloc.alloc(4 * KiB) == first  # first fit reuses the hole


def test_free_coalesces_neighbours():
    alloc = ExtentAllocator(16 * MiB)
    a = alloc.alloc(4 * KiB)
    b = alloc.alloc(4 * KiB)
    c = alloc.alloc(4 * KiB)
    alloc.free(a, 4 * KiB)
    alloc.free(c, 4 * KiB)
    alloc.free(b, 4 * KiB)
    assert len(alloc._free) == 1
    assert alloc._free[0] == (a, 12 * KiB)


def test_store_full():
    alloc = ExtentAllocator(512 * KiB)
    with pytest.raises(StoreFull):
        for _ in range(1000):
            alloc.alloc(64 * KiB)


# -- commits and views ----------------------------------------------------------------------


def test_sync_commit_is_immediately_complete(store):
    txn = store.begin_checkpoint(group_id=9)
    txn.put_object(POSIX_OID, "proc", {"pid": 1})
    info = store.commit(txn, sync=True)
    assert info.complete
    assert store.find_latest_complete(9) is info


def test_async_commit_completes_via_event_loop(store):
    txn = store.begin_checkpoint(group_id=9)
    txn.put_pages(MEM_OID, {i: Page(seed=i) for i in range(64)})
    seen = []
    info = store.commit(txn, on_complete=seen.append)
    assert not info.complete
    assert seen == []
    store.machine.loop.drain()
    assert info.complete
    assert seen == [info]


def test_incremental_merged_view_newest_wins(store):
    txn1 = store.begin_checkpoint(group_id=9)
    txn1.put_object(POSIX_OID, "proc", {"step": 1})
    txn1.put_pages(MEM_OID, {0: Page(seed=10), 1: Page(seed=11)})
    info1 = store.commit(txn1, sync=True)

    txn2 = store.begin_checkpoint(group_id=9, parent=info1.ckpt_id)
    txn2.put_object(POSIX_OID, "proc", {"step": 2})
    txn2.put_pages(MEM_OID, {1: Page(seed=21)})
    info2 = store.commit(txn2, sync=True)

    records, pages = store.merged_view(info2.ckpt_id)
    _oid, _otype, state = store.read_object_record(records[POSIX_OID])
    assert state == {"step": 2}
    assert store.fetch_page(pages[MEM_OID][0]).seed == 10
    assert store.fetch_page(pages[MEM_OID][1]).seed == 21

    # The older view is still intact (time travel).
    records1, pages1 = store.merged_view(info1.ckpt_id)
    _o, _t, state1 = store.read_object_record(records1[POSIX_OID])
    assert state1 == {"step": 1}
    assert store.fetch_page(pages1[MEM_OID][1]).seed == 11


def test_real_page_round_trip(store):
    txn = store.begin_checkpoint(group_id=9)
    payload = bytes(range(200))
    txn.put_pages(MEM_OID, {3: Page(data=payload)})
    info = store.commit(txn, sync=True)
    _records, pages = store.merged_view(info.ckpt_id)
    fetched = store.fetch_page(pages[MEM_OID][3])
    assert fetched.realize()[:200] == payload


def test_large_flush_packs_into_stripe_extents(store):
    txn = store.begin_checkpoint(group_id=9)
    npages = 64  # 256 KiB of real data
    txn.put_pages(MEM_OID, {i: Page(data=bytes([i]) * 100)
                            for i in range(npages)})
    info = store.commit(txn, sync=True)
    data_extents = [e for e in info.owned_extents
                    if e[1] >= PAGE_SIZE]
    assert all(length <= STRIPE_SIZE for _off, length in data_extents)
    assert info.data_bytes == npages * PAGE_SIZE


def test_double_commit_rejected(store):
    txn = store.begin_checkpoint(group_id=9)
    store.commit(txn, sync=True)
    with pytest.raises(InvalidArgument):
        store.commit(txn, sync=True)


def test_unknown_checkpoint(store):
    with pytest.raises(NoSuchCheckpoint):
        store.get_checkpoint(404)


def test_checkpoints_for_filters_partials(store):
    txn = store.begin_checkpoint(group_id=9)
    full = store.commit(txn, sync=True)
    txn2 = store.begin_checkpoint(group_id=9, parent=full.ckpt_id,
                                  partial=True)
    store.commit(txn2, sync=True)
    assert len(store.checkpoints_for(9)) == 1
    assert len(store.checkpoints_for(9, include_partial=True)) == 2


# -- garbage collection -------------------------------------------------------------------------


def _chain(store, n):
    infos = []
    parent = None
    for i in range(n):
        txn = store.begin_checkpoint(group_id=9, parent=parent)
        txn.put_pages(MEM_OID, {0: Page(seed=100 + i), i + 1: Page(seed=i)})
        info = store.commit(txn, sync=True)
        infos.append(info)
        parent = info.ckpt_id
    return infos


def test_delete_oldest_transfers_visible_state(store):
    infos = _chain(store, 3)
    reclaimed = store.delete_checkpoint(infos[0].ckpt_id)
    assert reclaimed > 0
    _records, pages = store.merged_view(infos[2].ckpt_id)
    # Page 1 only ever existed in the deleted checkpoint's delta; it
    # must have been transferred, and the newest page 0 must win.
    assert store.fetch_page(pages[MEM_OID][1]).seed == 0
    assert store.fetch_page(pages[MEM_OID][0]).seed == 102


def test_delete_middle_rejected(store):
    infos = _chain(store, 3)
    with pytest.raises(InvalidArgument):
        store.delete_checkpoint(infos[1].ckpt_id)


def test_retain_last_trims_history(store):
    infos = _chain(store, 6)
    store.retain_last(9, keep=2)
    remaining = store.checkpoints_for(9)
    assert [i.ckpt_id for i in remaining] == [infos[4].ckpt_id,
                                              infos[5].ckpt_id]
    _records, pages = store.merged_view(infos[5].ckpt_id)
    assert len(pages[MEM_OID]) == 7  # page 0 + pages 1..6 all visible


def test_gc_reclaims_space(store):
    infos = _chain(store, 5)
    used_before = store.used_bytes()
    store.retain_last(9, keep=1)
    assert store.used_bytes() < used_before


# -- crash recovery ------------------------------------------------------------------------------------


def test_recovery_finds_only_complete_checkpoints():
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    txn = store.begin_checkpoint(group_id=9)
    txn.put_pages(MEM_OID, {0: Page(data=b"durable")})
    done = store.commit(txn, sync=True)

    # Second checkpoint: crash while its flush is still queued.
    txn2 = store.begin_checkpoint(group_id=9, parent=done.ckpt_id)
    txn2.put_pages(MEM_OID, {0: Page(data=b"torn")})
    store.commit(txn2, sync=False)
    machine.crash()
    machine.boot()

    store2 = ObjectStore(machine)
    assert store2.mount()
    latest = store2.find_latest_complete(9)
    assert latest.ckpt_id == done.ckpt_id
    _records, pages = store2.merged_view(latest.ckpt_id)
    assert store2.fetch_page(pages[MEM_OID][0]).realize()[:7] == b"durable"


def test_mount_blank_array_returns_false():
    machine = Machine()
    store = ObjectStore(machine)
    assert not store.mount()


def test_recovery_preserves_oid_cursor():
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    oid = store.alloc_oid(CLASS_POSIX)
    txn = store.begin_checkpoint(group_id=9)
    txn.put_object(oid, "proc", {})
    store.commit(txn, sync=True)
    machine.crash()
    machine.boot()
    store2 = ObjectStore(machine)
    store2.mount()
    assert oid_serial(store2.alloc_oid(CLASS_POSIX)) > oid_serial(oid)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000_000),
       st.integers(min_value=1, max_value=6))
def test_crash_at_any_point_recovers_a_complete_prefix(crash_delay, nckpts):
    """Crash at an arbitrary instant during a chain of async commits:
    recovery always yields a prefix of complete checkpoints whose
    merged views are intact."""
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    parent = None
    for i in range(nckpts):
        txn = store.begin_checkpoint(group_id=9, parent=parent)
        txn.put_pages(MEM_OID, {j: Page(seed=i * 100 + j)
                                for j in range(8)})
        info = store.commit(txn, sync=False)
        parent = info.ckpt_id
        machine.loop.run_until(machine.clock.now() + crash_delay)
    machine.crash()
    machine.boot()
    store2 = ObjectStore(machine)
    if not store2.mount():
        return  # crashed before the first superblock landed
    chain = store2.checkpoints_for(9)
    # A (possibly empty) prefix survived.
    assert len(chain) <= nckpts
    if chain:
        surviving = len(chain)
        _records, pages = store2.merged_view(chain[-1].ckpt_id)
        for j in range(8):
            assert store2.fetch_page(pages[MEM_OID][j]).seed == \
                (surviving - 1) * 100 + j
