"""The self-healing storage path: transient-fault retry/backoff,
online repair, and degraded-mode checkpointing.

Covers the resilience policy layer end to end:

* :class:`~repro.core.resilience.RetryPolicy` unit behavior —
  deterministic backoff, attempt/deadline bounds, exhaustion.
* Seeded transient/intermittent device faults absorbed by the store's
  retries; exhausted retries rolling the checkpoint back cleanly
  (no leaked blocks — the regression test for the abort path).
* The orchestrator's degraded mode: ENOSPC → memory-only checkpoints
  plus emergency GC; repeated device errors → widened interval; both
  exit automatically when a probe checkpoint succeeds, with the spell
  visible to ``sls events`` and the ``sls slo`` degraded budget.
* Read-path self-healing: a corrupt record falls back to an ancestor
  delta's copy instead of failing the restore.
* Replication link flaps: retry/reconnect with backoff, failover only
  after the outage deadline.
* ``sls scrub --repair``: scrubber findings promoted into applied
  fixes, re-scrub clean.
* A Hypothesis property: any seeded schedule of *retryable* faults
  within the retry budget completes, restores the last durable
  checkpoint, and scrubs clean.
"""

import random

import pytest

from repro import Machine, load_aurora
from repro.core import events, resilience, telemetry
from repro.core.faults import (FaultPlan, InjectedCrash, INTERMITTENT,
                               TRANSIENT)
from repro.core.replication import ReplicationLink
from repro.core.resilience import GroupHealth, RetryPolicy
from repro.errors import (CorruptRecord, LinkDown, NoSpace,
                          RetriesExhausted, SLSError,
                          TransientDeviceError)
from repro.hw.clock import SimClock
from repro.hw.memory import Page
from repro.objstore.oid import CLASS_MEMORY, make_oid
from repro.objstore.repair import repair
from repro.objstore.scrub import scrub
from repro.objstore.store import ObjectStore, SUPERBLOCK_SLOTS
from repro.units import MiB, MSEC, PAGE_SIZE, USEC

from tests.crashsched import CounterAppWorkload, CrashScheduleExplorer

MEM_OID = make_oid(CLASS_MEMORY, 42)


def _store_with_chain(machine, nckpts=3):
    store = ObjectStore(machine)
    store.format()
    parent = None
    infos = []
    for index in range(nckpts):
        txn = store.begin_checkpoint(group_id=4, parent=parent)
        txn.put_object(MEM_OID, "vmobject", {"step": index})
        txn.put_pages(MEM_OID, {0: Page(data=b"page-%d" % index * 16)})
        info = store.commit(txn, sync=True)
        infos.append(info)
        parent = info.ckpt_id
    return store, infos


def _flip_byte(machine, offset, index=0):
    payload = machine.storage.read(offset)
    assert isinstance(payload, bytes)
    flipped = (payload[:index] + bytes([payload[index] ^ 0xFF]) +
               payload[index + 1:])
    machine.storage.discard_extent(offset)
    machine.storage.write(offset, flipped)


# -- RetryPolicy units --------------------------------------------------------------


def test_retry_absorbs_transient_failures_and_advances_sim_clock():
    clock = SimClock()
    policy = RetryPolicy(clock, seed=7, op="unit")
    calls = []

    def flaky():
        calls.append(clock.now())
        if len(calls) < 3:
            raise TransientDeviceError("not yet")
        return "done"

    assert policy.run(flaky) == "done"
    assert len(calls) == 3
    # Each retry waited a strictly positive backoff on the sim clock.
    assert calls[0] == 0 and calls[1] > 0 and calls[2] > calls[1]


def test_retry_backoff_is_deterministic_and_bounded():
    first = RetryPolicy(SimClock(), seed=11)
    second = RetryPolicy(SimClock(), seed=11)
    seq1 = [first.backoff_ns(a) for a in range(1, 8)]
    seq2 = [second.backoff_ns(a) for a in range(1, 8)]
    assert seq1 == seq2
    # Exponential up to the cap, plus at most 50% jitter.
    for attempt, delay in enumerate(seq1, start=1):
        base = min(first.max_backoff_ns,
                   first.base_backoff_ns << (attempt - 1))
        assert base <= delay <= base + base // 2


def test_retry_exhausts_after_max_attempts_with_last_error():
    telemetry.reset()
    clock = SimClock()
    policy = RetryPolicy(clock, max_attempts=3, seed=1, op="unit")

    def always():
        raise TransientDeviceError("forever")

    with pytest.raises(RetriesExhausted) as excinfo:
        policy.run(always)
    assert isinstance(excinfo.value.last_error, TransientDeviceError)
    exhausted = events.log().matching(events.RETRY_EXHAUSTED)
    assert len(exhausted) == 1 and exhausted[0].fields["attempts"] == 3
    assert len(events.log().matching(events.RETRY)) == 2
    telemetry.reset()


def test_retry_deadline_bounds_total_backoff():
    clock = SimClock()
    deadline = 500 * USEC
    policy = RetryPolicy(clock, max_attempts=100, deadline_ns=deadline,
                         seed=3, op="unit")
    with pytest.raises(RetriesExhausted) as excinfo:
        policy.run(lambda: (_ for _ in ()).throw(
            TransientDeviceError("forever")))
    assert "deadline" in str(excinfo.value)
    # Backoffs never sleep past the deadline.
    assert clock.now() <= deadline


def test_non_retryable_errors_propagate_immediately():
    policy = RetryPolicy(SimClock(), seed=5)
    calls = []

    def fatal():
        calls.append(1)
        raise ValueError("not a device problem")

    with pytest.raises(ValueError):
        policy.run(fatal)
    assert len(calls) == 1


# -- transient faults on the store path ---------------------------------------------


def test_transient_write_faults_are_absorbed_by_store_retry():
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    machine.set_fault_plan(
        FaultPlan(name="blip").transient_at_io(1, times=2))
    txn = store.begin_checkpoint(group_id=4)
    txn.put_object(MEM_OID, "vmobject", {"v": 1})
    txn.put_pages(MEM_OID, {0: Page(data=b"payload" * 16)})
    info = store.commit(txn, sync=True)
    assert info.complete
    plan = machine.fault_plan
    assert [e.kind for e in plan.events] == [TRANSIENT, TRANSIENT]
    assert scrub(store).ok


def test_transient_read_faults_are_absorbed_on_readback():
    machine = Machine()
    store, infos = _store_with_chain(machine, nckpts=1)
    machine.set_fault_plan(
        FaultPlan(name="rblip").transient_at_read(0, times=2))
    oid, otype, state = store.read_object_record(
        infos[0].object_records[MEM_OID])
    assert oid == MEM_OID and otype == "vmobject"
    assert machine.fault_plan.events[0].op == "read"


def test_intermittent_faults_replay_identically_for_a_seed():
    def run(seed):
        machine = Machine()
        store = ObjectStore(machine)
        store.format()
        machine.set_fault_plan(
            FaultPlan(name="flaky", seed=seed).intermittent(p=0.35,
                                                            limit=4))
        txn = store.begin_checkpoint(group_id=4)
        for i in range(4):
            oid = make_oid(CLASS_MEMORY, 100 + i)
            txn.put_object(oid, "vmobject", {"i": i})
            txn.put_pages(oid, {0: Page(seed=i)})
        store.commit(txn, sync=True)
        return [(e.kind, e.io_index) for e in machine.fault_plan.events]

    assert run(0xFEED) == run(0xFEED)
    # The sequence is seed-dependent, not constant.
    all_runs = {tuple(run(seed)) for seed in (1, 2, 3, 4, 5)}
    assert len(all_runs) > 1


def test_exhausted_retries_roll_checkpoint_back_without_leaking_blocks():
    """The block-leak regression test: a commit that dies after some
    data extents were written must free every block it allocated."""
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    baseline = store.alloc.used_bytes()
    ckpts_before = dict(store.checkpoints)
    # Far more failures than the retry budget: IO 2 never lands.
    machine.set_fault_plan(
        FaultPlan(name="dead").transient_at_io(2, times=1000))
    txn = store.begin_checkpoint(group_id=4)
    for i in range(4):
        oid = make_oid(CLASS_MEMORY, 200 + i)
        txn.put_object(oid, "vmobject", {"i": i})
        txn.put_pages(oid, {0: Page(data=bytes([i]) * 2048)})
    with pytest.raises(RetriesExhausted):
        store.commit(txn, sync=True)
    assert txn.aborted
    assert store.alloc.used_bytes() == baseline, \
        "aborted checkpoint leaked extents"
    assert store.checkpoints == ckpts_before
    assert events.log().matching(events.CKPT_ABORT)
    machine.clear_fault_plan()
    report = scrub(store)
    assert report.ok, report.findings
    # The store still takes checkpoints afterwards.
    txn2 = store.begin_checkpoint(group_id=4)
    txn2.put_object(MEM_OID, "vmobject", {"after": True})
    assert store.commit(txn2, sync=True).complete


# -- FaultPlan.random reproducibility (new kinds included) --------------------------


def test_random_plans_reproduce_and_cover_new_kinds():
    """Identical seed ⇒ identical schedule and describe(); the seeded
    distribution actually produces the new retryable kinds."""
    described = set()
    for seed in range(64):
        first = FaultPlan.random(seed, io_count=40,
                                 boundaries=[("seal", "before")])
        second = FaultPlan.random(seed, io_count=40,
                                  boundaries=[("seal", "before")])
        assert first.describe() == second.describe()
        described.add(first.describe())
    assert any("transient(x" in d for d in described), described
    assert any("intermittent(p=" in d for d in described), described


# -- degraded mode ------------------------------------------------------------------


def _run_enospc_degradation():
    """Drive a periodic group into ENOSPC degradation and out again.

    Returns (machine, sls, group, enter_events, exit_events)."""
    telemetry.reset()
    machine = Machine(capacity_per_device=1 * MiB)
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(256 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=True)
    # Dirty a large slice every period: history accumulates until the
    # store fills, then the tick degrades instead of crashing.
    for step in range(40):
        proc.vmspace.fill(addr, 160, seed=step)
        machine.run_for(group.period_ns)
        if events.log().matching(events.DEGRADED_EXIT):
            break
    enters = events.log().matching(events.DEGRADED_ENTER)
    exits = events.log().matching(events.DEGRADED_EXIT)
    return machine, sls, group, enters, exits


def test_enospc_degrades_to_mem_checkpoints_and_auto_recovers():
    machine, sls, group, enters, exits = _run_enospc_degradation()
    assert enters and enters[0].fields["reason"] == resilience.REASON_ENOSPC
    # While degraded the cadence continued memory-only...
    mem_starts = events.log().matching(events.CKPT_START, mode="mem")
    assert mem_starts, "no memory-only checkpoints while degraded"
    # ...emergency GC freed history...
    assert events.log().matching(events.GC_EMERGENCY)
    # ...and a successful probe exited the spell automatically.
    assert exits, "group never exited degraded mode"
    assert not group.health.degraded
    assert exits[0].fields["spell_ns"] > 0
    # The SLO tracker charged the degraded budget.
    row = sls.slo.report(group.group_id)[0]
    assert row["degraded_spells"] >= 1
    assert row["degraded_total_ns"] == exits[0].fields["spell_ns"]
    assert not row["degraded_open"]
    telemetry.reset()


def test_enospc_degradation_is_deterministic_sim_time():
    _m1, _s1, _g1, enters1, exits1 = _run_enospc_degradation()
    _m2, _s2, _g2, enters2, exits2 = _run_enospc_degradation()
    assert [(e.time_ns, dict(e.fields)) for e in enters1] == \
        [(e.time_ns, dict(e.fields)) for e in enters2]
    assert [(e.time_ns, dict(e.fields)) for e in exits1] == \
        [(e.time_ns, dict(e.fields)) for e in exits2]
    telemetry.reset()


def test_repeated_device_errors_widen_interval_then_recover():
    telemetry.reset()
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=True)
    period = group.period_ns
    # Enough failures for three exhausted ticks (3 x max_attempts),
    # then two more: the first widened-interval probe retries through
    # them and succeeds.
    budget = 3 * resilience.DEVICE_FAILURE_THRESHOLD + 2
    assert sls.store.retry.max_attempts == 5
    machine.set_fault_plan(
        FaultPlan(name="sick").transient_at_io(0, times=17))
    proc.vmspace.write(addr, b"keep dirtying")
    for step in range(8):
        proc.vmspace.write(addr, b"step-%d" % step)
        machine.run_for(period)
        if events.log().matching(events.DEGRADED_EXIT):
            break
    del budget
    enters = events.log().matching(events.DEGRADED_ENTER)
    exits = events.log().matching(events.DEGRADED_EXIT)
    assert enters and enters[0].fields["reason"] == resilience.REASON_DEVICE
    assert exits, "probe never recovered the group"
    # The degraded spell ran on the widened cadence: the exit came at
    # least one widened period after the enter.
    spell = exits[0].time_ns - enters[0].time_ns
    assert spell >= resilience.WIDEN_FACTOR * period
    assert not group.health.degraded
    assert group.health.consecutive_failures == 0
    telemetry.reset()


def test_group_health_state_machine():
    health = GroupHealth()
    assert not health.degraded
    health.enter(resilience.REASON_ENOSPC, 1000)
    assert health.degraded and health.reason == resilience.REASON_ENOSPC
    # Re-enter with a different reason: the spell continues.
    health.enter(resilience.REASON_DEVICE, 5000)
    assert health.entered_ns == 1000
    assert health.reason == resilience.REASON_DEVICE
    assert health.exit(11_000) == 10_000
    assert not health.degraded and health.ticks == 0


# -- async flush failure ------------------------------------------------------------


def test_async_flush_failure_rolls_back_and_forces_full_checkpoint():
    """A failure during the *async* finalize (after the checkpoint
    call returned) must roll the group back, reopen the flush gate,
    and force the next disk checkpoint full so the rolled-back dirty
    pages are recaptured."""
    telemetry.reset()
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=False)
    proc.vmspace.write(addr, b"durable-v1")
    sls.checkpoint(group, sync=True)

    proc.vmspace.write(addr, b"async-v2!!")
    plan = FaultPlan(name="late")
    machine.set_fault_plan(plan)
    sls.checkpoint(group, sync=False)
    assert group.flush_in_progress
    # Every write from here on is finalize-time (meta, catalog,
    # superblock): make the first of them fail past the retry budget.
    plan.transient_at_io(plan.io_index, times=1000)
    machine.run_for(50 * MSEC)

    fails = events.log().matching(events.CKPT_FAIL)
    assert any(e.fields.get("async_flush") for e in fails), fails
    assert not group.flush_in_progress
    assert group.force_full_next
    machine.clear_fault_plan()

    # The next checkpoint recaptures the rolled-back pages (it is
    # forced full) and restores show the new state.
    result = sls.checkpoint(group, sync=True)
    assert result.info.complete
    assert not group.force_full_next
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    restored = sls2.restore(gid, periodic=False)
    assert restored.root.vmspace.read(addr, 10) == b"async-v2!!"
    assert scrub(sls2.store).ok
    telemetry.reset()


# -- read-path self-healing ---------------------------------------------------------


def test_corrupt_record_falls_back_to_parent_copy():
    telemetry.reset()
    machine = Machine()
    store, infos = _store_with_chain(machine, nckpts=3)
    newest = infos[-1]
    extent, _length = newest.object_records[MEM_OID]
    _flip_byte(machine, extent, index=20)

    primary = {MEM_OID: newest.object_records[MEM_OID]}
    fallbacks = store.record_fallbacks(newest.ckpt_id, primary)
    assert fallbacks[MEM_OID], "no ancestor copies found"
    decoded = store.read_object_records(primary, fallbacks=fallbacks)
    otype, state = decoded[MEM_OID]
    # The ancestor's copy is stale but consistent.
    assert otype == "vmobject" and state["step"] in (0, 1)
    fallback_events = events.log().matching(events.READ_FALLBACK)
    assert fallback_events and \
        fallback_events[-1].fields["source"] == "parent"
    telemetry.reset()


def test_corrupt_record_with_no_fallback_still_fails_loudly():
    machine = Machine()
    store, infos = _store_with_chain(machine, nckpts=1)
    extent, _length = infos[0].object_records[MEM_OID]
    _flip_byte(machine, extent, index=20)
    primary = {MEM_OID: infos[0].object_records[MEM_OID]}
    with pytest.raises(CorruptRecord):
        store.read_object_records(
            primary, fallbacks=store.record_fallbacks(infos[0].ckpt_id,
                                                      primary))


# -- replication link flaps ---------------------------------------------------------


@pytest.fixture
def pair():
    primary = Machine()
    primary_sls = load_aurora(primary)
    standby = Machine()
    standby_sls = load_aurora(standby)
    return primary, primary_sls, standby, standby_sls


def _service(machine, sls):
    proc = machine.kernel.spawn("svc")
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, name="svc", periodic=False)
    return proc, group, addr


def test_link_flap_reconnects_with_backoff_and_ships(pair):
    telemetry.reset()
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = _service(primary, primary_sls)
    link = ReplicationLink(primary_sls, standby_sls, group)
    proc.vmspace.write(addr, b"flap-state")
    primary_sls.checkpoint(group, sync=True)
    primary.set_fault_plan(FaultPlan(name="flap").flaky_link(times=2))
    before = primary.clock.now()
    assert link.ship() == group.last_complete_id
    assert primary.clock.now() > before, "reconnect paid no backoff"
    assert link.down_since is None and link.stats["outages"] == 0
    assert len(events.log().matching(events.RETRY, op="replication.ship")) \
        == 2
    primary.crash()
    result = link.failover()
    assert result.root.vmspace.read(addr, 10) == b"flap-state"
    telemetry.reset()


def test_link_outage_defers_failover_until_deadline(pair):
    telemetry.reset()
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = _service(primary, primary_sls)
    link = ReplicationLink(primary_sls, standby_sls, group,
                           failover_deadline_ns=30 * MSEC)
    proc.vmspace.write(addr, b"shipped-v1")
    primary_sls.checkpoint(group, sync=True)
    assert link.ship() == group.last_complete_id

    # A long outage: every reconnect attempt finds the link down.
    proc.vmspace.write(addr, b"stranded!!")
    primary_sls.checkpoint(group, sync=True)
    primary.set_fault_plan(FaultPlan(name="down").flaky_link(times=10_000))
    assert link.ship() is None
    assert link.down_since is not None
    assert events.log().matching(events.LINK_DOWN)

    # Before the deadline: failover is refused (keep retrying).
    with pytest.raises(SLSError):
        link.failover()
    # After the deadline: the standby may take over, from the last
    # shipped checkpoint (bounded loss).
    primary.clock.advance(31 * MSEC)
    result = link.failover()
    assert result.root.vmspace.read(addr, 10) == b"shipped-v1"
    assert events.log().matching(events.FAILOVER)
    telemetry.reset()


def test_link_recovery_emits_link_up(pair):
    telemetry.reset()
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = _service(primary, primary_sls)
    link = ReplicationLink(primary_sls, standby_sls, group)
    proc.vmspace.write(addr, b"first")
    primary_sls.checkpoint(group, sync=True)
    primary.set_fault_plan(FaultPlan(name="out").flaky_link(times=10))
    assert link.ship() is None  # 5 attempts exhausted, 5 flaps left
    assert link.down_since is not None
    assert link.ship() is None  # 5 more attempts: flap budget drains
    assert link.ship() == group.last_complete_id  # link healed
    assert link.down_since is None
    assert events.log().matching(events.LINK_UP)
    assert link.stats["outages"] == 1
    telemetry.reset()


# -- scrub --repair -----------------------------------------------------------------


def test_repair_rewrites_corrupt_superblock_slot():
    machine = Machine()
    store, _infos = _store_with_chain(machine)
    stale_slot = SUPERBLOCK_SLOTS[(store._generation + 1) % 2]
    _flip_byte(machine, stale_slot, index=10)
    report = scrub(store)
    assert any(f.kind == "superblock" and str(stale_slot) in f.detail
               for f in report.findings), report.findings
    fixes = repair(store, report)
    assert any(a.kind == "superblock" for a in fixes.actions)
    assert scrub(store).ok


def test_repair_resets_stale_refcounts():
    machine = Machine()
    store, _infos = _store_with_chain(machine)
    offset = next(iter(store.extent_refs))
    store.extent_refs[offset] += 2
    store.extent_refs[999_999] = 3
    fixes = repair(store)
    assert len([a for a in fixes.actions if a.kind == "refcount"]) == 2
    assert 999_999 not in store.extent_refs
    assert scrub(store).ok


def test_repair_trims_free_list_overlapping_live_extent():
    from repro.objstore import records
    from repro.objstore.scrub import _read_superblocks

    machine = Machine()
    store, infos = _store_with_chain(machine)
    live_off, live_len = infos[0].owned_extents[0]
    # Corrupt the durable superblock: a live extent lands on the free
    # list.  A fresh mount then loads the poisoned allocator state.
    slots = _read_superblocks(machine.storage)
    slot, newest = max(((s, sb) for s, sb, _p in slots if sb is not None),
                       key=lambda item: item[1]["generation"])
    newest["free_list"] = list(newest["free_list"]) + [[live_off, live_len]]
    machine.storage.discard_extent(slot)
    machine.storage.write(slot,
                          records.encode(records.REC_SUPERBLOCK, newest))
    store = ObjectStore(machine)
    assert store.mount()
    report = scrub(store)
    assert any(f.kind == "freelist" for f in report.findings)
    fixes = repair(store, report)
    assert any(a.kind == "freelist" for a in fixes.actions)
    report2 = scrub(store)
    assert not [f for f in report2.findings if f.kind == "freelist"], \
        report2.findings


def test_repair_collapses_overgrown_shadow_chains():
    from repro.core.orchestrator import Orchestrator
    from repro.core.shadowing import NONE
    from repro.objstore import scrub as scrub_mod

    machine = Machine()
    sls = load_aurora(machine)
    sls = Orchestrator(machine, sls.store, sls.slsfs,
                       collapse_direction=NONE)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=False)
    for round_no in range(scrub_mod.MAX_SHADOW_DEPTH + 2):
        proc.vmspace.write(addr, b"round-%d" % round_no)
        sls.checkpoint(group, sync=True)
    report = scrub(sls.store, sls=sls)
    assert any(f.kind == "shadow-chain" for f in report.findings)
    fixes = repair(sls.store, report, sls=sls)
    assert any(a.kind == "shadow-chain" for a in fixes.actions)
    assert scrub(sls.store, sls=sls).ok
    # The repaired group still checkpoints and reads correctly.
    proc.vmspace.write(addr, b"after-fix")
    sls.checkpoint(group, sync=True)
    assert proc.vmspace.read(addr, 9) == b"after-fix"


def test_cli_scrub_repair_fixes_image_and_rescrubs_clean(tmp_path,
                                                         capsys):
    from repro.core.cli import main, _boot_from_image, _save_image

    image = str(tmp_path / "aurora.img")
    assert main(["init", image]) == 0
    assert main(["spawn", image, "demo", "--memory-kib", "64"]) == 0
    assert main(["run", image, "1", "--millis", "20"]) == 0

    machine = _boot_from_image(image)
    store = ObjectStore(machine)
    assert store.mount()
    stale_slot = SUPERBLOCK_SLOTS[(store._generation + 1) % 2]
    _flip_byte(machine, stale_slot, index=10)
    _save_image(machine, image)

    assert main(["scrub", image, "--repair"]) == 0
    out = capsys.readouterr().out
    assert "superblock" in out and "re-scrub: store is clean" in out
    # The repair persisted: a plain scrub of the image is clean.
    assert main(["scrub", image]) == 0
    assert "store is clean" in capsys.readouterr().out


def test_cli_slo_reports_degraded_budget(tmp_path, capsys):
    from repro.core.cli import main

    image = str(tmp_path / "aurora.img")
    assert main(["init", image]) == 0
    assert main(["spawn", image, "app", "--memory-kib", "64"]) == 0
    assert main(["slo", image, "1", "--checkpoints", "10",
                 "--degraded-ms", "25"]) == 0
    out = capsys.readouterr().out
    assert "degraded" in out
    assert "25" in out.split("degraded", 1)[1].splitlines()[0] or \
        "25.0" in out


# -- chaos smoke (CI) ---------------------------------------------------------------


def test_chaos_smoke_retryable_schedules_complete_after_retries():
    """Seeded random fault campaign, retry-aware: every plan whose
    fired faults are all *retryable* must complete the checkpoint
    (absorbed by backoff/retry), restore the new state after a crash,
    and scrub clean.  Non-retryable plans keep the old contract:
    restore yields a durable state or fails loudly."""
    explorer = CrashScheduleExplorer()
    schedule = explorer.probe()
    workload = explorer.workload
    retryable_completions = 0
    for seed in range(20):
        run = workload.boot()
        plan = FaultPlan.random(seed, schedule.io_count,
                                schedule.boundaries)
        run.machine.set_fault_plan(plan)
        completed = False
        try:
            workload.checkpoint(run)
            completed = True
        except (InjectedCrash, NoSpace, RetriesExhausted):
            pass
        fired_kinds = {e.kind for e in plan.events}
        retryable_only = fired_kinds <= {TRANSIENT, INTERMITTENT}
        if retryable_only:
            assert completed, \
                f"seed {seed} ({plan.describe()}): retryable faults " \
                f"were not absorbed"
            retryable_completions += 1
        run.machine.crash()
        run.machine.boot()
        sls = load_aurora(run.machine)
        try:
            result = sls.restore(run.gid, periodic=False)
        except CorruptRecord:
            assert not retryable_only
            continue
        state = workload.read_state(result.root, run.addr)
        if retryable_only:
            assert state == workload.V2, \
                f"seed {seed}: completed checkpoint not durable"
            report = scrub(sls.store)
            assert report.ok, (seed, report.findings)
        else:
            assert state in (workload.V1, workload.V2)
    assert retryable_completions >= 2, \
        "campaign never exercised the retry path"


# -- the Hypothesis property --------------------------------------------------------


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_property_retryable_schedules_restore_last_durable(seed):
    """For an arbitrary seeded schedule of transient/intermittent
    faults within the retry budget: the checkpoint completes, a crash
    + restore yields exactly the checkpointed state, and the store
    scrubs clean."""
    rng = random.Random(seed)
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=False)
    proc.vmspace.write(addr, b"property-v1")
    sls.checkpoint(group, sync=True)
    proc.vmspace.write(addr, b"property-v2")

    plan = FaultPlan(name=f"prop-{seed}", seed=seed)
    for _ in range(rng.randrange(4)):
        # times <= 3 < the 5-attempt budget: always absorbable.
        plan.transient_at_io(rng.randrange(24),
                             times=1 + rng.randrange(3))
    for _ in range(rng.randrange(3)):
        plan.transient_at_read(rng.randrange(8),
                               times=1 + rng.randrange(3))
    if rng.random() < 0.5:
        # limit < the attempt budget: a single op can never exhaust.
        plan.intermittent(p=0.3 * rng.random(), limit=4)
    machine.set_fault_plan(plan)

    sls.checkpoint(group, sync=True)  # must complete despite faults
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid, periodic=False)
    assert result.root.vmspace.read(addr, 11) == b"property-v2"
    report = scrub(sls2.store)
    assert report.ok, (seed, plan.describe(), report.findings)
