"""Processes, threads, signals, sessions, PID virtualization."""

import pytest

from repro.errors import InvalidArgument, NoSuchProcess
from repro.kernel.proc.pid import IDVirtualization, PIDAllocator
from repro.kernel.proc.signals import (SIGCHLD, SIGCONT, SIGKILL, SIGSTOP,
                                       SIGTERM, SIGUSR1, SignalState)
from repro.kernel.proc.thread import (AT_BOUNDARY, IN_SYSCALL,
                                      IN_SYSCALL_SLEEPING, IN_USER)
from repro.machine import Machine


@pytest.fixture
def kernel():
    return Machine().kernel


def test_spawn_builds_tree(kernel):
    parent = kernel.spawn("parent")
    child = kernel.fork(parent, name="child")
    grandchild = kernel.fork(child)
    assert child.parent is parent
    assert grandchild in child.children
    assert [p.name for p in parent.tree()] == ["parent", "child",
                                               "proc" + str(grandchild.pid)
                                               if False else grandchild.name]


def test_fork_inherits_pgroup_and_cwd(kernel):
    parent = kernel.spawn("p")
    parent.cwd = "/work"
    child = kernel.fork(parent)
    assert child.pgroup is parent.pgroup
    assert child.cwd == "/work"


def test_exit_and_reap(kernel):
    parent = kernel.spawn("p")
    child = kernel.fork(parent)
    child.exit(3)
    assert child.state == "zombie"
    # Parent got SIGCHLD.
    assert SIGCHLD in parent.main_thread.signals.pending
    status = parent.reap(child)
    assert status == 3
    assert child not in parent.children


def test_reap_running_child_fails(kernel):
    parent = kernel.spawn("p")
    child = kernel.fork(parent)
    with pytest.raises(InvalidArgument):
        parent.reap(child)


def test_orphans_reparented_to_init(kernel):
    parent = kernel.spawn("p")
    child = kernel.fork(parent)
    grandchild = kernel.fork(child)
    child.exit(0)
    assert grandchild.parent is kernel.initproc


def test_sigkill_terminates(kernel):
    proc = kernel.spawn("victim")
    proc.post_signal(SIGKILL)
    assert proc.state == "zombie"
    assert proc.exit_status == -SIGKILL


def test_sigstop_sigcont(kernel):
    proc = kernel.spawn("p")
    proc.post_signal(SIGSTOP)
    assert proc.state == "stopped"
    proc.post_signal(SIGCONT)
    assert proc.state == "running"


def test_signal_mask_blocks_delivery():
    state = SignalState()
    delivered = []
    state.handlers[SIGUSR1] = delivered.append
    state.block(SIGUSR1)
    state.post(SIGUSR1)
    assert state.dispatch() == []
    state.unblock(SIGUSR1)
    assert state.dispatch() == [SIGUSR1]
    assert delivered == [SIGUSR1]


def test_sigkill_unmaskable():
    state = SignalState()
    state.block(SIGKILL)
    assert SIGKILL not in state.mask


def test_signal_state_snapshot_round_trip():
    state = SignalState()
    state.block(SIGTERM)
    state.post(SIGUSR1)
    snap = state.snapshot()
    fresh = SignalState()
    fresh.restore(snap)
    assert fresh.mask == {SIGTERM}
    assert fresh.pending == [SIGUSR1]


def test_pgroup_signal_all(kernel):
    leader = kernel.spawn("leader")
    member = kernel.fork(leader)
    count = leader.pgroup.signal_all(SIGTERM)
    assert count == 2
    assert SIGTERM in member.main_thread.signals.pending


# -- threads and the syscall boundary -----------------------------------------------------


def test_thread_syscall_transitions(kernel):
    proc = kernel.spawn("p")
    thread = proc.main_thread
    assert thread.location == IN_USER
    thread.enter_syscall("read")
    assert thread.location == IN_SYSCALL
    thread.leave_syscall()
    assert thread.location == IN_USER


def test_sleeping_syscall_restart_rewinds_pc(kernel):
    proc = kernel.spawn("p")
    thread = proc.main_thread
    thread.cpu_state.regs["rip"] = 0x1000
    thread.enter_syscall("nanosleep", sleeping=True)
    thread.park_at_boundary()
    assert thread.location == AT_BOUNDARY
    assert thread.cpu_state.regs["rip"] == 0x1000 - 2
    assert thread.syscall_restarted
    thread.resume()
    assert thread.location == IN_USER
    assert not thread.syscall_restarted


def test_cpu_state_snapshot_round_trip(kernel):
    proc = kernel.spawn("p")
    thread = proc.main_thread
    thread.cpu_state.regs["rax"] = 42
    thread.cpu_state.fpu = b"\x01" * 64
    snap = thread.cpu_state.snapshot()
    other = kernel.spawn("q").main_thread
    other.cpu_state.restore(snap)
    assert other.cpu_state.regs["rax"] == 42
    assert other.cpu_state.fpu == b"\x01" * 64


def test_multithreaded_process(kernel):
    proc = kernel.spawn("mt")
    t2 = proc.add_thread()
    t3 = proc.add_thread()
    assert len(proc.threads) == 3
    assert len({t.tid for t in proc.threads}) == 3
    proc.exit(0)
    assert proc.threads == []


# -- ID allocation and virtualization ------------------------------------------------------


def test_pid_allocator_unique():
    alloc = PIDAllocator()
    pids = {alloc.allocate() for _ in range(100)}
    assert len(pids) == 100


def test_pid_reserve_and_release():
    alloc = PIDAllocator()
    assert alloc.reserve(500)
    assert not alloc.reserve(500)
    alloc.release(500)
    assert alloc.reserve(500)


def test_id_virtualization_bidirectional():
    idmap = IDVirtualization()
    idmap.bind(100, 2345)
    assert idmap.to_global(100) == 2345
    assert idmap.to_local(2345) == 100
    # Unbound ids pass through.
    assert idmap.to_global(7) == 7
    assert idmap.to_local(7) == 7


def test_id_virtualization_rejects_double_bind():
    idmap = IDVirtualization()
    idmap.bind(100, 2345)
    with pytest.raises(InvalidArgument):
        idmap.bind(100, 9999)
    with pytest.raises(InvalidArgument):
        idmap.bind(7, 2345)


def test_process_lookup(kernel):
    proc = kernel.spawn("findme")
    assert kernel.process(proc.pid) is proc
    with pytest.raises(NoSuchProcess):
        kernel.process(54321)
