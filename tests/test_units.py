"""Units and formatting helpers."""

import pytest

from repro.units import (GiB, KiB, MiB, PAGE_SIZE, MSEC, SEC, USEC,
                         fmt_size, fmt_time, pages_of)


def test_size_constants_are_powers_of_two():
    assert KiB == 2 ** 10
    assert MiB == 2 ** 20
    assert GiB == 2 ** 30
    assert PAGE_SIZE == 4 * KiB


def test_pages_of_rounds_up():
    assert pages_of(0) == 0
    assert pages_of(1) == 1
    assert pages_of(PAGE_SIZE) == 1
    assert pages_of(PAGE_SIZE + 1) == 2
    assert pages_of(10 * PAGE_SIZE) == 10


def test_pages_of_rejects_negative():
    with pytest.raises(ValueError):
        pages_of(-1)


def test_fmt_size():
    assert fmt_size(512) == "512 B"
    assert fmt_size(5 * MiB) == "5.0 MiB"
    assert fmt_size(2 * GiB) == "2.0 GiB"


def test_fmt_time():
    assert fmt_time(500) == "500 ns"
    assert fmt_time(4 * USEC) == "4.00 us"
    assert fmt_time(3 * MSEC) == "3.00 ms"
    assert fmt_time(2 * SEC) == "2.000 s"
