"""SimClock and EventLoop determinism."""

import pytest

from repro.hw.clock import EventLoop, SimClock


def test_clock_starts_at_zero_and_advances():
    clock = SimClock()
    assert clock.now() == 0
    assert clock.advance(5) == 5
    assert clock.advance(0) == 5


def test_clock_rejects_negative_advance():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_advance_to_never_goes_backwards():
    clock = SimClock(100)
    clock.advance_to(50)
    assert clock.now() == 100
    clock.advance_to(200)
    assert clock.now() == 200


def test_events_run_in_time_order():
    clock = SimClock()
    loop = EventLoop(clock)
    order = []
    loop.call_at(30, lambda: order.append("c"))
    loop.call_at(10, lambda: order.append("a"))
    loop.call_at(20, lambda: order.append("b"))
    loop.run_until(100)
    assert order == ["a", "b", "c"]
    assert clock.now() == 100


def test_same_deadline_runs_in_schedule_order():
    clock = SimClock()
    loop = EventLoop(clock)
    order = []
    for tag in "xyz":
        loop.call_at(10, lambda t=tag: order.append(t))
    loop.run_until(10)
    assert order == ["x", "y", "z"]


def test_cancelled_event_does_not_fire():
    clock = SimClock()
    loop = EventLoop(clock)
    fired = []
    event = loop.call_at(10, lambda: fired.append(1))
    event.cancel()
    loop.run_until(100)
    assert fired == []


def test_callbacks_may_reschedule():
    clock = SimClock()
    loop = EventLoop(clock)
    ticks = []

    def tick():
        ticks.append(clock.now())
        if len(ticks) < 3:
            loop.call_after(10, tick)

    loop.call_after(10, tick)
    loop.run_until(100)
    assert ticks == [10, 20, 30]


def test_cannot_schedule_in_past():
    clock = SimClock(50)
    loop = EventLoop(clock)
    with pytest.raises(ValueError):
        loop.call_at(10, lambda: None)


def test_clock_advances_to_event_deadline_before_callback():
    clock = SimClock()
    loop = EventLoop(clock)
    seen = []
    loop.call_at(42, lambda: seen.append(clock.now()))
    loop.run_until(42)
    assert seen == [42]


def test_drain_runs_everything():
    clock = SimClock()
    loop = EventLoop(clock)
    count = []
    loop.call_at(5, lambda: count.append(1))
    loop.call_at(15, lambda: count.append(2))
    executed = loop.drain()
    assert executed == 2
    assert loop.next_deadline() is None


def test_drain_detects_runaway():
    clock = SimClock()
    loop = EventLoop(clock)

    def forever():
        loop.call_after(1, forever)

    loop.call_after(1, forever)
    with pytest.raises(RuntimeError):
        loop.drain(limit=100)
