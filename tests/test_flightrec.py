"""The crash-persistent flight recorder.

The recorder's contract has three legs, each tested here against the
live store rather than mocks:

* **Fixed-size, zero-cost persistence** — every snapshot is exactly
  ``FLIGHTREC_BYTES`` on media and rides the commit protocol without
  advancing the simulated clock, so instrumented and uninstrumented
  runs keep identical timings, allocator state and crash schedules.
* **Recoverability** — ``blackbox`` reconstructs the timeline from an
  unmounted (or unmountable) store's raw superblock slots, ending at
  the last durable commit.
* **Volatile merge** — the surviving in-process event ring appends
  the post-snapshot tail (the history that never reached durability),
  each row marked ``post_snapshot``.
"""

import pytest

from repro import Machine, load_aurora
from repro.core import events, flightrec, telemetry
from repro.objstore.store import ObjectStore
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture(autouse=True)
def fresh_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _run(count=3, name="app", pages=4):
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn(name)
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, name=name, periodic=False)
    results = []
    for i in range(count):
        proc.vmspace.fill(addr, pages, seed=i)
        machine.run_for(10 * MSEC)
        results.append(sls.checkpoint(group, name=f"v{i}", sync=True))
    return machine, sls, group, results


# -- the record format ------------------------------------------------------------------


def test_snapshot_encodes_at_exactly_the_fixed_size():
    machine, sls, group, _ = _run(3)
    payload = flightrec.encode_snapshot(sls.store, generation=7)
    assert len(payload) == flightrec.FLIGHTREC_BYTES
    body = flightrec.decode_snapshot(payload)
    assert body["generation"] == 7
    assert body["time_ns"] == machine.clock.now()
    assert "pad" not in body


def test_snapshot_round_trips_events_spans_and_slo_rows():
    machine, sls, group, results = _run(3)
    body = flightrec.decode_snapshot(
        flightrec.encode_snapshot(sls.store,
                                  pending={"group": group.group_id,
                                           "ckpt": 9, "name": "x"}))
    kinds = [row["kind"] for row in body["events"]]
    assert events.CKPT_COMMIT in kinds
    assert body["pending"] == {"group": group.group_id, "ckpt": 9,
                               "name": "x"}
    assert body["telemetry_enabled"] is True
    assert any(span["name"] == "checkpoint" for span in body["spans"])
    (row,) = body["slo"]
    assert row["group"] == group.group_id
    assert row["tenant"] == "app"
    assert row["commits"] == len(results)
    assert len(row["rpo_tail"]) == row["rpo_lag"]["count"]


def test_oversized_content_is_shed_oldest_first_not_fatal():
    machine, sls, group, _ = _run(1)
    log = events.log()
    for i in range(2000):
        log.emit(machine.clock.now(), "test.noise", payload="y" * 200, n=i)
    payload = flightrec.encode_snapshot(sls.store)
    assert len(payload) == flightrec.FLIGHTREC_BYTES
    body = flightrec.decode_snapshot(payload)
    # Whatever survived shedding is the *newest* slice of the ring.
    kept = [row["fields"]["n"] for row in body["events"]
            if row["kind"] == "test.noise"]
    assert kept == sorted(kept)
    assert kept[-1] == 1999


def test_snapshot_persistence_has_zero_simulated_clock_cost():
    """Enabled vs disabled telemetry: identical clocks, allocator
    cursors and store generations — the recorder's media writes are
    timing-free and fixed-size by construction."""
    def observe(enabled):
        telemetry.reset()
        telemetry.set_enabled(enabled)
        machine, sls, group, _ = _run(3)
        return (machine.clock.now(), sls.store.alloc.cursor,
                sls.store._generation, sls.store._flightrec_extent)

    on = observe(True)
    off = observe(False)
    assert on[0] == off[0], "clock diverged with the recorder enabled"
    assert on[1] == off[1], "allocator diverged"
    assert on[2] == off[2], "generation diverged"
    assert on[3] == off[3], "snapshot extent placement diverged"


# -- reconstruction ---------------------------------------------------------------------


def test_blackbox_recovers_from_a_crashed_unmounted_store():
    machine, sls, group, results = _run(3)
    machine.crash()
    machine.boot()
    # No mount: the raw device is all the black box needs.
    store = ObjectStore(machine)
    box = flightrec.blackbox(store)
    assert box is not None
    last = box.last_durable
    assert last is not None
    assert last["kind"] == flightrec.COMMIT_DURABLE
    assert last["fields"]["ckpt"] == results[-1].info.ckpt_id
    assert last["fields"]["name"] == "v2"
    # The persisted timeline ends at the durable commit.
    assert box.events[-1] is last
    assert box.generation == sls.store._generation


def test_blackbox_timeline_ends_at_last_durable_commit():
    machine, sls, group, results = _run(2)
    box = flightrec.blackbox(sls.store)
    commits = [row for row in box.events
               if row["kind"] in (events.CKPT_COMMIT,
                                  flightrec.COMMIT_DURABLE)]
    # v0 as a persisted commit event, v1 as the synthesized pending
    # marker (its snapshot rode v1's own superblock flip).
    assert commits[-1]["fields"]["ckpt"] == results[-1].info.ckpt_id
    assert not any(row["time_ns"] > box.snapshot["time_ns"]
                   for row in box.events)


def test_volatile_ring_merges_as_post_snapshot_tail():
    machine, sls, group, _ = _run(2)
    events.emit(machine.clock.now() + 5, events.FAULT_INJECTED,
                fault="crash", io_index=42)
    box = flightrec.blackbox(sls.store, volatile=events.log())
    faults = [row for row in box.timeline()
              if row["kind"] == events.FAULT_INJECTED]
    assert len(faults) == 1
    assert faults[0]["post_snapshot"] is True
    assert faults[0]["fields"]["io_index"] == 42
    # Pre-snapshot history is not duplicated by the merge: every
    # volatile row postdates the snapshot instant, and the only
    # commit it may carry is the anchoring (pending) one — the live
    # ring's counterpart of the synthesized durable marker.
    snap_ns = box.snapshot["time_ns"]
    assert all(row["time_ns"] >= snap_ns for row in box.volatile)
    volatile_commits = [row for row in box.volatile
                        if row["kind"] == events.CKPT_COMMIT]
    assert [row["fields"]["ckpt"] for row in volatile_commits] == \
        [box.last_durable["fields"]["ckpt"]]


def test_blackbox_returns_none_on_a_blank_store():
    machine = Machine()
    store = ObjectStore(machine)
    assert flightrec.blackbox(store) is None


def test_recovery_survives_a_corrupt_newest_anchor():
    """Torn flight-recorder extent: reconstruction falls back to the
    previous superblock generation's snapshot."""
    machine, sls, group, results = _run(3)
    offset, length = sls.store._flightrec_extent
    sls.store.device.place_extent(offset, b"\xff" * length)
    box = flightrec.blackbox(sls.store)
    assert box is not None
    assert box.generation < sls.store._generation
    assert box.last_durable["fields"]["ckpt"] == \
        results[-2].info.ckpt_id
