"""UDP and TCP socket models."""

import pytest

from repro.errors import (AddressInUse, ConnectionRefused, NotConnected,
                          WouldBlock)
from repro.kernel.net.tcp import TCPSocket, TCP_ESTABLISHED, TCP_LISTEN
from repro.kernel.net.udp import UDPSocket
from repro.machine import Machine


@pytest.fixture
def kernel():
    return Machine().kernel


def test_udp_bind_and_receive(kernel):
    sock = UDPSocket(kernel)
    sock.bind("10.0.0.1", 53)
    assert sock.enqueue(("10.0.0.2", 9999), b"query")
    payload, source = sock.recvfrom()
    assert payload == b"query"
    assert source == ("10.0.0.2", 9999)


def test_udp_port_conflict(kernel):
    a = UDPSocket(kernel)
    a.bind("10.0.0.1", 53)
    b = UDPSocket(kernel)
    with pytest.raises(AddressInUse):
        b.bind("10.0.0.1", 53)


def test_udp_reuseaddr(kernel):
    a = UDPSocket(kernel)
    a.bind("10.0.0.1", 53)
    b = UDPSocket(kernel)
    b.options["SO_REUSEADDR"] = 1
    b.bind("10.0.0.1", 53)  # allowed


def test_udp_drops_when_buffer_full(kernel):
    sock = UDPSocket(kernel)
    sock.options["SO_RCVBUF"] = 10
    assert sock.enqueue(("a", 1), b"0123456789")
    assert not sock.enqueue(("a", 1), b"dropped")


def test_udp_empty_recv_blocks(kernel):
    sock = UDPSocket(kernel)
    with pytest.raises(WouldBlock):
        sock.recvfrom()


def test_tcp_connect_accept_transfer(kernel):
    server = TCPSocket(kernel)
    server.bind("10.0.0.1", 80)
    server.listen()
    client = TCPSocket(kernel)
    client.connect("10.0.0.1", 80)
    accepted = server.accept()
    assert accepted.state == TCP_ESTABLISHED
    assert client.state == TCP_ESTABLISHED
    client.send(b"GET /")
    assert accepted.recv(5) == b"GET /"
    accepted.send(b"200 OK")
    assert client.recv(6) == b"200 OK"


def test_tcp_sequence_numbers_advance(kernel):
    server = TCPSocket(kernel)
    server.bind("10.0.0.1", 80)
    server.listen()
    client = TCPSocket(kernel)
    client.connect("10.0.0.1", 80)
    accepted = server.accept()
    start = client.snd_nxt
    client.send(b"12345")
    assert client.snd_nxt == (start + 5) & 0xFFFFFFFF
    assert accepted.rcv_nxt == client.snd_nxt


def test_tcp_connect_refused_without_listener(kernel):
    client = TCPSocket(kernel)
    with pytest.raises(ConnectionRefused):
        client.connect("10.0.0.9", 80)


def test_tcp_backlog_limit_drops_syn(kernel):
    server = TCPSocket(kernel)
    server.bind("10.0.0.1", 80)
    server.listen(backlog=1)
    TCPSocket(kernel).connect("10.0.0.1", 80)
    with pytest.raises(ConnectionRefused):
        TCPSocket(kernel).connect("10.0.0.1", 80)


def test_tcp_five_tuple(kernel):
    server = TCPSocket(kernel)
    server.bind("10.0.0.1", 80)
    server.listen()
    client = TCPSocket(kernel)
    client.connect("10.0.0.1", 80)
    accepted = server.accept()
    proto, laddr, lport, raddr, rport = accepted.five_tuple()
    assert proto == "tcp"
    assert (laddr, lport) == ("10.0.0.1", 80)


def test_tcp_send_on_closed_socket(kernel):
    sock = TCPSocket(kernel)
    with pytest.raises(NotConnected):
        sock.send(b"x")


def test_tcp_port_released_on_destroy(kernel):
    server = TCPSocket(kernel)
    server.bind("10.0.0.1", 80)
    server.listen()
    server.unref()
    fresh = TCPSocket(kernel)
    fresh.bind("10.0.0.1", 80)  # no AddressInUse
