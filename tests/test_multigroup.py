"""Multiple consistency groups: isolation, interleaving, history walks."""

import pytest

from repro import Machine, load_aurora
from repro.core import migration
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    return machine, sls


def make_app(machine, sls, name, period_ms=None):
    proc = machine.kernel.spawn(name)
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, name=name,
                       period_ns=(period_ms or 10) * MSEC,
                       periodic=period_ms is not None)
    return proc, group, addr


def test_two_groups_checkpoint_independently(setup):
    machine, sls = setup
    proc_a, group_a, addr_a = make_app(machine, sls, "alpha")
    proc_b, group_b, addr_b = make_app(machine, sls, "beta")
    proc_a.vmspace.write(addr_a, b"alpha-state")
    proc_b.vmspace.write(addr_b, b"beta-state")
    sls.checkpoint(group_a, sync=True)
    proc_b.vmspace.write(addr_b, b"beta-later")
    sls.checkpoint(group_b, sync=True)

    gids = (group_a.group_id, group_b.group_id)
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    assert set(sls2.restorable_groups()) == set(gids)
    result_a = sls2.restore(gids[0], periodic=False)
    result_b = sls2.restore(gids[1], periodic=False)
    assert result_a.root.vmspace.read(addr_a, 11) == b"alpha-state"
    assert result_b.root.vmspace.read(addr_b, 10) == b"beta-later"


def test_groups_have_disjoint_oid_spaces(setup):
    machine, sls = setup
    _pa, group_a, _aa = make_app(machine, sls, "a")
    _pb, group_b, _ab = make_app(machine, sls, "b")
    sls.checkpoint(group_a, sync=True)
    sls.checkpoint(group_b, sync=True)
    oids_a = set(group_a.oid_map.values()) | {group_a.desc_oid}
    oids_b = set(group_b.oid_map.values()) | {group_b.desc_oid}
    assert not oids_a & oids_b


def test_restoring_one_group_leaves_other_running(setup):
    machine, sls = setup
    proc_a, group_a, addr_a = make_app(machine, sls, "survivor")
    proc_b, group_b, addr_b = make_app(machine, sls, "victim")
    proc_a.vmspace.write(addr_a, b"running")
    proc_b.vmspace.write(addr_b, b"pre-rollback")
    sls.checkpoint(group_a, sync=True)
    sls.checkpoint(group_b, sync=True)
    proc_b.vmspace.write(addr_b, b"post-rollbck")

    # Roll back only the victim.
    from repro.core.api import AuroraAPI
    api = AuroraAPI(sls, proc_b)
    result = api.sls_restore()
    assert result.root.vmspace.read(addr_b, 12) == b"pre-rollback"
    # The survivor was untouched.
    assert proc_a.state == "running"
    assert proc_a.vmspace.read(addr_a, 7) == b"running"


def test_restore_every_checkpoint_in_a_chain(setup):
    """Walk the entire history: every checkpoint restores its exact
    state (constant-time restores at any point, §4)."""
    machine, sls = setup
    proc, group, addr = make_app(machine, sls, "walker")
    ckpts = []
    for step in range(8):
        proc.vmspace.write(addr, f"step-{step}".encode())
        res = sls.checkpoint(group, sync=True)
        ckpts.append(res.info.ckpt_id)
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    for step, ckpt_id in enumerate(ckpts):
        result = sls2.restore(gid, ckpt_id=ckpt_id, periodic=False)
        assert result.root.vmspace.read(addr, 6) == \
            f"step-{step}".encode()[:6]
        for p in list(result.group.processes):
            result.group.remove_process(p)
            p.exit(0)
        sls2.groups.pop(gid, None)


def test_gc_one_group_does_not_disturb_another(setup):
    machine, sls = setup
    proc_a, group_a, addr_a = make_app(machine, sls, "trimmed")
    proc_b, group_b, addr_b = make_app(machine, sls, "kept")
    proc_b.vmspace.write(addr_b, b"kept-data")
    sls.checkpoint(group_b, sync=True)
    for step in range(5):
        proc_a.vmspace.write(addr_a, f"a{step}".encode())
        sls.checkpoint(group_a, sync=True)
    sls.store.retain_last(group_a.group_id, keep=1)
    # Group B's single checkpoint still restores.
    gid_b = group_b.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid_b)
    assert result.root.vmspace.read(addr_b, 9) == b"kept-data"


def test_migrated_group_keeps_identity_among_others(setup):
    machine, sls = setup
    _pa, group_a, _aa = make_app(machine, sls, "stay")
    proc_b, group_b, addr_b = make_app(machine, sls, "move")
    proc_b.vmspace.write(addr_b, b"moving state")

    target = Machine()
    target_sls = load_aurora(target)
    result = migration.migrate(sls, target_sls, group_b)
    assert result.root.vmspace.read(addr_b, 12) == b"moving state"
    # Source still owns only group A.
    assert list(sls.groups) == [group_a.group_id]


def test_interleaved_periodic_groups(setup):
    machine, sls = setup
    proc_a, group_a, addr_a = make_app(machine, sls, "fast", period_ms=5)
    proc_b, group_b, addr_b = make_app(machine, sls, "slow", period_ms=25)
    for tick in range(20):
        proc_a.vmspace.touch(addr_a, 2, seed=tick)
        proc_b.vmspace.touch(addr_b, 2, seed=tick + 100)
        machine.run_for(5 * MSEC)
    assert group_a.stats["checkpoints"] > 2.5 * group_b.stats["checkpoints"]
    assert group_b.stats["checkpoints"] >= 2


# -- fleet contention --------------------------------------------------------


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import telemetry
from repro.core.fleet import ADMIT_SERVICE_NS, TIME_UTIL_CAP


def _spawn_fleet(machine, sls, specs, pages=4, **attach_kw):
    """Attach one tenant per (period_ms) spec; returns the tenants."""
    tenants = []
    for index, period_ms in enumerate(specs):
        proc = machine.kernel.spawn(f"c{index}")
        addr = proc.vmspace.mmap(pages * PAGE_SIZE, name="heap")
        group = sls.attach(proc, name=f"c{index}",
                           period_ns=period_ms * MSEC, **attach_kw)
        tenants.append((proc, group, addr))
    return tenants


def test_contention_same_period_tenants_stay_fair(setup):
    """Eight tenants with identical periods all dirtying every step:
    the stagger shares the store, nobody misses, and checkpoint counts
    stay within one tick of each other."""
    machine, sls = setup
    telemetry.reset()
    tenants = _spawn_fleet(machine, sls, [20] * 8)
    for step in range(30):
        for proc, _group, addr in tenants:
            proc.vmspace.write(addr, b"step:%d" % step)
        machine.run_for(10 * MSEC)
    counts = [group.stats["checkpoints"] for _p, group, _a in tenants]
    assert max(counts) - min(counts) <= 1, counts
    assert all(group.deadline_misses == 0 for _p, group, _a in tenants)
    assert sls.fleet.summary()["fairness"]["jain"] >= 0.9
    telemetry.reset()


def test_contention_offender_widens_but_neighbours_keep_cadence(setup):
    """One tenant's runaway measured demand draws all backpressure;
    the other tenants keep their requested cadence and miss nothing."""
    machine, sls = setup
    telemetry.reset()
    tenants = _spawn_fleet(machine, sls, [10, 10, 10, 10])
    _p, offender, _a = tenants[0]
    offender.demand_bytes_per_ckpt = 1 << 42
    for step in range(30):
        for proc, _group, addr in tenants:
            proc.vmspace.write(addr, b"step:%d" % step)
        machine.run_for(10 * MSEC)
    assert offender.backpressure_factor > 1
    for _p2, other, _a2 in tenants[1:]:
        assert other.backpressure_factor == 1
        assert other.deadline_misses == 0
        assert other.stats["checkpoints"] >= 20
    telemetry.reset()


@settings(max_examples=12, deadline=None)
@given(st.lists(st.sampled_from([10, 20, 25, 40, 50, 100]),
                min_size=1, max_size=8))
def test_edf_never_misses_for_feasible_demand_sets(periods_ms):
    """The EDF property: any demand set whose admission-time
    utilization fits well inside the cap schedules with zero deadline
    misses."""
    utilization = sum(ADMIT_SERVICE_NS / (p * MSEC) for p in periods_ms)
    if utilization > TIME_UTIL_CAP / 2:
        return  # infeasible by construction; admission's problem
    telemetry.reset()
    machine = Machine()
    sls = load_aurora(machine)
    tenants = _spawn_fleet(machine, sls, periods_ms, history_limit=2)
    for step in range(20):
        for proc, _group, addr in tenants:
            proc.vmspace.write(addr, b"step:%d" % step)
        machine.run_for(10 * MSEC)
    for _proc, group, _addr in tenants:
        assert group.deadline_misses == 0, \
            (periods_ms, group.name, group.deadline_misses)
        assert group.stats["checkpoints"] >= \
            (20 * 10 * MSEC) // (2 * group.period_ns)
    telemetry.reset()


@pytest.mark.slow
def test_256_group_sweep_all_admitted_none_miss(setup):
    """The fleet holds 256 concurrent groups on one machine: all admit
    (aggregate demand fits), every tenant checkpoints, nobody misses a
    deadline, and the normalized fairness stays high."""
    machine, sls = setup
    telemetry.reset()
    specs = [(100, 200, 400)[index % 3] for index in range(256)]
    tenants = _spawn_fleet(machine, sls, specs, pages=2,
                           history_limit=2)
    assert len(sls.groups) == 256
    for step in range(130):
        for proc, _group, addr in tenants:
            proc.vmspace.write(addr, b"s:%d" % step)
        machine.run_for(10 * MSEC)
    for _proc, group, _addr in tenants:
        assert group.deadline_misses == 0
        assert group.stats["checkpoints"] >= 2
    summary = sls.fleet.summary()
    assert summary["tenants"] == 256
    assert summary["deadline_misses"] == 0
    assert summary["fairness"]["jain"] >= 0.9
    telemetry.reset()
