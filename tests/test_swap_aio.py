"""Memory overcommitment (pageout daemon) and asynchronous IO."""

import pytest

from repro import Machine, load_aurora
from repro.kernel.aio import AIO_READ, AIO_WRITE
from repro.kernel.swap import MADV_DONTNEED
from repro.units import MiB, PAGE_SIZE


def small_machine():
    """A machine with tiny RAM so pageout pressure is easy to create."""
    machine = Machine(ram_bytes=4 * MiB)  # 1024 frames
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("hog")
    group = sls.attach(proc, periodic=False)
    return machine, sls, proc, group


def test_pageout_evicts_clean_pages_without_io():
    machine, sls, proc, group = small_machine()
    kernel = machine.kernel
    addr = proc.vmspace.mmap(960 * PAGE_SIZE, name="heap")
    # Checkpoint while comfortably below the watermark (no automatic
    # pageout yet): the flush stamps these pages clean.
    proc.vmspace.fill(addr, 700, seed=0)
    sls.checkpoint(group, sync=True)
    # Now create pressure with fresh dirty pages.
    proc.vmspace.fill(addr + 700 * PAGE_SIZE, 230, seed=1)
    track = next(iter(group.tracks.values()))
    chain = list(track.active.chain())
    assert kernel.pageout.memory_pressure()
    written_before = machine.storage.bytes_written
    evicted = kernel.pageout.run_pageout(chain, store=sls.store)
    assert evicted > 0
    assert kernel.pageout.evictions_clean == evicted  # clean only
    assert machine.storage.bytes_written == written_before  # no IO


def test_pageout_flushes_dirty_pages_through_store():
    machine, sls, proc, group = small_machine()
    kernel = machine.kernel
    addr = proc.vmspace.mmap(960 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 930, seed=1)  # dirty, never checkpointed
    obj = proc.vmspace.entry_at(addr).vmobject
    assert kernel.pageout.memory_pressure()
    evicted = kernel.pageout.run_pageout([obj], store=sls.store)
    assert evicted > 0
    assert kernel.pageout.evictions_dirty == evicted


def test_page_in_after_eviction_restores_content():
    machine, sls, proc, group = small_machine()
    kernel = machine.kernel
    addr = proc.vmspace.mmap(960 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 930, seed=2)
    proc.vmspace.write(addr, b"page zero data")
    obj = proc.vmspace.entry_at(addr).vmobject
    kernel.pageout.run_pageout([obj], store=sls.store)
    # Evicted pages fault back in transparently on access.
    assert proc.vmspace.read(addr, 14) == b"page zero data"
    assert kernel.pageout.pageins >= 0


def test_madvise_dontneed_prioritizes_eviction():
    machine, sls, proc, group = small_machine()
    kernel = machine.kernel
    addr = proc.vmspace.mmap(960 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 930, seed=3)
    sls.checkpoint(group, sync=True)
    track = next(iter(group.tracks.values()))
    base = track.active.backing  # the frozen shadow holding the pages
    kernel.pageout.madvise(base, 5, MADV_DONTNEED)
    kernel.pageout.run_pageout(list(track.active.chain()),
                               store=sls.store)
    assert kernel.pageout.is_evicted(base, 5)


def test_orchestrator_runs_pageout_automatically():
    """The §6 loop end-to-end: periodic checkpoints keep pages clean,
    and under pressure the orchestrator reclaims them without IO."""
    machine, sls, proc, group = small_machine()
    kernel = machine.kernel
    addr = proc.vmspace.mmap(960 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 930, seed=7)
    assert kernel.pageout.memory_pressure()
    sls.checkpoint(group, sync=True)  # on_complete triggers pageout
    assert kernel.pageout.evictions_clean > 0
    assert not kernel.pageout.memory_pressure()
    # Evicted pages transparently fault back in with correct content.
    proc.vmspace.write(addr, b"still works")
    assert proc.vmspace.read(addr, 11) == b"still works"


def test_eviction_records_survive_collapse():
    """A collapse moves pages between objects; records for already-
    evicted pages must follow or their content becomes unreachable."""
    machine, sls, proc, group = small_machine()
    kernel = machine.kernel
    addr = proc.vmspace.mmap(960 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"evict me")
    proc.vmspace.fill(addr + PAGE_SIZE, 929, seed=1)
    sls.checkpoint(group, sync=True)   # flush + auto-pageout happens
    # Another dirty round and checkpoint: collapses the old frozen
    # shadow (where the evicted pages' records pointed).
    proc.vmspace.touch(addr + PAGE_SIZE, 4, seed=2)
    sls.checkpoint(group, sync=True)
    proc.vmspace.touch(addr + PAGE_SIZE, 4, seed=3)
    sls.checkpoint(group, sync=True)
    assert proc.vmspace.read(addr, 8) == b"evict me"


# -- AIO ----------------------------------------------------------------------------------


def test_aio_completes_via_event_loop():
    machine = Machine()
    kernel = machine.kernel
    request = kernel.aio.submit(AIO_WRITE, None, 0, 4096)
    assert request.status == "pending"
    machine.loop.drain()
    assert request.status == "done"


def test_aio_quiesce_records_reads_and_write_barrier():
    """§5.3: reads are recorded for reissue; writes gate checkpoint
    completion."""
    machine = Machine()
    kernel = machine.kernel
    read_req = kernel.aio.submit(AIO_READ, None, 100, 4096)
    write_req = kernel.aio.submit(AIO_WRITE, None, 200, 8192)
    state = kernel.aio.quiesce()
    assert state["reads"] == [{"op": "read", "offset": 100,
                               "length": 4096}]
    assert state["write_barrier"] == [write_req.aio_id]
    assert not kernel.aio.writes_drained(state["write_barrier"])
    machine.loop.drain()
    assert kernel.aio.writes_drained(state["write_barrier"])


def test_failed_aio_recorded():
    machine = Machine()
    kernel = machine.kernel
    request = kernel.aio.submit(AIO_WRITE, None, 0, 4096)
    kernel.aio.fail(request, "EIO")
    state = kernel.aio.quiesce()
    assert state["failed"] == [{"op": "write", "offset": 0,
                                "error": "EIO"}]
