"""Incremental kernel-state checkpoints: epoch dirty-tracking from
KObject through the store's record chains.

The serializer walks everything (liveness) but re-writes only what
mutated since the group's epoch floor; unchanged records resolve
through ``merged_view``'s newest-wins chain walk; GC copy-forwards
still-live records when the chain is truncated.  These tests pin the
protocol edges: floor advancement only on successful disk commits,
deletion semantics via ``live_oids``, reclaimed-bytes accounting for
page-less deltas, and byte-identical restore/scrub across a
``retain_last``-truncated incremental chain.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, load_aurora
from repro.core.faults import FaultPlan
from repro.core.pipeline import MODE_MEM
from repro.core.serialize import CheckpointSerializer
from repro.core import telemetry
from repro.errors import NoSpace
from repro.kernel.fs.file import O_CREAT, O_RDWR
from repro.objstore import records
from repro.objstore.scrub import LIVENESS, scrub


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    group = sls.attach(proc, periodic=False)
    return machine, sls, proc, group


def _open_files(kernel, proc, count, prefix="/f"):
    fds = [kernel.open(proc, f"{prefix}{i}", O_CREAT | O_RDWR)
           for i in range(count)]
    for fd in fds:
        kernel.write(proc, fd, b"seed")
    return fds


# -- the incremental skip ------------------------------------------------------


def test_clean_records_skipped_after_first_checkpoint(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    _open_files(kernel, proc, 16)

    first = sls.checkpoint(group, sync=True)
    assert first.records_skipped == 0
    assert first.records_written > 32          # files + vnodes + proc

    second = sls.checkpoint(group, sync=True)
    # Only the always-dirty process + descriptor records remain.
    assert second.records_written <= 3
    assert second.records_skipped >= 32
    info = sls.store.get_checkpoint(second.info.ckpt_id)
    assert info.records_skipped == second.records_skipped
    assert info.live_oids is not None
    # Everything live is either in this delta or a parent's.
    merged, _pages = sls.store.merged_view(second.info.ckpt_id)
    assert info.live_oids <= set(merged)


def test_records_written_tracks_dirty_set_10x(setup):
    """The acceptance ratio at test scale: with 1% of a 200-fd group
    mutating per tick, steady-state records-written drops >= 10x
    versus the full walk."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fds = _open_files(kernel, proc, 200)

    full = sls.checkpoint(group, sync=True)
    for fd in fds[:2]:                          # 1% of the objects
        kernel.write(proc, fd, b"x")
    incremental = sls.checkpoint(group, sync=True)
    assert full.records_written >= 10 * incremental.records_written
    assert incremental.records_skipped > 0


def test_full_flag_overrides_the_epoch_floor(setup):
    machine, sls, proc, group = setup
    _open_files(machine.kernel, proc, 8)
    first = sls.checkpoint(group, sync=True)
    forced = sls.checkpoint(group, full=True, sync=True)
    assert forced.records_skipped == 0
    assert forced.records_written == first.records_written


def test_closed_file_leaves_the_live_set(setup):
    """live_oids distinguishes "unchanged" from "deleted": a closed
    descriptor's records drop out of the merged view even though an
    ancestor delta still physically holds them."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fds = _open_files(kernel, proc, 4)
    first = sls.checkpoint(group, sync=True)
    merged_before, _ = sls.store.merged_view(first.info.ckpt_id)

    kernel.close(proc, fds[0])
    second = sls.checkpoint(group, sync=True)
    merged_after, _ = sls.store.merged_view(second.info.ckpt_id)
    dropped = set(merged_before) - set(merged_after)
    assert dropped, "closing an fd must shrink the merged view"
    info = sls.store.get_checkpoint(second.info.ckpt_id)
    assert dropped & (set(merged_before) - info.live_oids) == dropped


def test_mem_checkpoint_never_advances_the_floor(setup):
    """An in-memory checkpoint may skip by the floor but must not
    advance it: a later disk checkpoint still captures mutations made
    before the mem checkpoint."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fds = _open_files(kernel, proc, 4)
    sls.checkpoint(group, sync=True)
    floor = group.ckpt_epoch
    assert floor is not None

    kernel.write(proc, fds[0], b"dirty")
    sls.checkpoint(group, mode=MODE_MEM)
    assert group.ckpt_epoch == floor

    disk = sls.checkpoint(group, sync=True)
    # The mutated OpenFile + vnode records are in the disk delta.
    info = sls.store.get_checkpoint(disk.info.ckpt_id)
    decoded = sls.store.read_object_records(info.object_records)
    assert any(otype == "file" for otype, _s in decoded.values())
    assert group.ckpt_epoch is not None and group.ckpt_epoch > floor


def test_failed_commit_never_advances_the_floor(setup):
    """ENOSPC mid-commit fails the checkpoint; the epoch floor stays
    put, so nothing mutated before the failure can ever be skipped by
    a later (successful) checkpoint."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fds = _open_files(kernel, proc, 4)
    sls.checkpoint(group, sync=True)
    floor = group.ckpt_epoch

    kernel.write(proc, fds[0], b"must-survive")
    machine.set_fault_plan(FaultPlan(name="enospc").nospace_at_io(1))
    with pytest.raises(NoSpace):
        sls.checkpoint(group, sync=True)
    assert group.ckpt_epoch == floor
    machine.set_fault_plan(FaultPlan(name="clear"))


# -- GC: record forwarding on truncation --------------------------------------


def test_retain_last_forwards_records_across_truncation(setup):
    """Truncating an incremental chain copy-forwards still-live
    records into the oldest survivor; the merged view afterwards is
    unchanged and every record still checksums."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fds = _open_files(kernel, proc, 12)
    sls.checkpoint(group, sync=True)
    for tick in range(3):
        kernel.write(proc, fds[tick], b"tick%d" % tick)
        last = sls.checkpoint(group, sync=True)

    merged_before = sls.store.read_object_records(
        sls.store.merged_view(last.info.ckpt_id)[0])
    reclaimed = sls.store.retain_last(group.group_id, 1)
    assert reclaimed > 0
    merged_after = sls.store.read_object_records(
        sls.store.merged_view(last.info.ckpt_id)[0])
    assert merged_after == merged_before

    report = scrub(sls.store, sls)
    assert report.ok, report.findings
    assert report.liveness_checked > 0


def test_truncated_incremental_chain_restores_byte_identical(setup):
    """The acceptance path: restore across a retain_last-truncated
    incremental chain returns exactly the bytes of the last durable
    checkpoint."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fds = _open_files(kernel, proc, 8)
    sls.checkpoint(group, sync=True)
    kernel.write(proc, fds[3], b"-generation-2")
    sls.checkpoint(group, sync=True)
    kernel.write(proc, fds[5], b"-generation-3")
    sls.checkpoint(group, sync=True)
    gid = group.group_id
    sls.store.retain_last(gid, 1)

    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    assert scrub(sls2.store, sls2).ok
    result = sls2.restore(gid, periodic=False)
    root = result.root
    for index, expected in ((3, b"seed-generation-2"),
                            (5, b"seed-generation-3"),
                            (7, b"seed")):
        machine.kernel.lseek(root, fds[index], 0)
        data = machine.kernel.read(root, fds[index], 64)
        assert data == expected, f"fd {index}"


def test_gc_drops_records_dead_in_every_survivor(setup):
    """A record live in no surviving checkpoint's effective set is not
    forwarded — truncation is what actually erases deleted state."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fds = _open_files(kernel, proc, 4)
    first = sls.checkpoint(group, sync=True)
    merged_first = set(sls.store.merged_view(first.info.ckpt_id)[0])
    kernel.close(proc, fds[0])
    last = sls.checkpoint(group, sync=True)

    sls.store.retain_last(group.group_id, 1)
    survivor = sls.store.get_checkpoint(last.info.ckpt_id)
    # The closed file's records were dropped, not forwarded.
    assert not (merged_first - survivor.live_oids) & \
        set(survivor.object_records)
    assert scrub(sls.store, sls).ok


def test_reclaimed_bytes_counted_for_pageless_checkpoints(setup):
    """The telemetry fix: deleting a checkpoint that owns zero page
    extents (a pure OS-state delta) still reports its record + meta
    bytes as reclaimed, in the return value and in
    ``sls.store.reclaimed_bytes``."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fds = _open_files(kernel, proc, 4)
    sls.checkpoint(group, sync=True)
    # Mutate kernel state only - no new page data in the delta.
    kernel.lseek(proc, fds[0], 1)
    mid = sls.checkpoint(group, sync=True)
    sls.checkpoint(group, sync=True)

    info = sls.store.get_checkpoint(mid.info.ckpt_id)
    assert not info.pages and info.data_bytes == 0

    before = sls.store.stats["reclaimed_bytes"]
    reclaimed = sls.store.retain_last(group.group_id, 1)
    assert reclaimed > 0
    assert sls.store.stats["reclaimed_bytes"] - before == reclaimed


def test_chain_depth_histogram_samples_every_commit(setup):
    machine, sls, proc, group = setup
    _open_files(machine.kernel, proc, 2)
    hist = telemetry.registry().histogram("sls.store.chain_depth",
                                          group=group.group_id)
    count0 = hist.count
    for _ in range(4):
        sls.checkpoint(group, sync=True)
    assert hist.count == count0 + 4
    assert hist.max >= 4


# -- scrub: the liveness invariant --------------------------------------------


def test_scrub_flags_unreachable_live_record(setup):
    """Doctoring a parent delta's metadata to lose a record that a
    descendant's live set still needs produces a ``liveness``
    finding — the invariant record forwarding exists to protect."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    _open_files(kernel, proc, 4)
    first = sls.checkpoint(group, sync=True)
    last = sls.checkpoint(group, sync=True)

    parent = sls.store.get_checkpoint(first.info.ckpt_id)
    live = sls.store.get_checkpoint(last.info.ckpt_id).live_oids
    victim_oid = next(oid for oid in parent.object_records
                      if oid in live)
    doctored = parent.encode_meta()
    del doctored["object_records"][str(victim_oid)]
    payload = records.encode(records.REC_CKPT_META, doctored)
    sls.store.device.write(parent.meta_extent[0], payload)

    report = scrub(sls.store)
    assert any(finding.kind == LIVENESS for finding in report.findings), \
        report.findings


# -- the property: merged_view == from-scratch full serialization -------------


class _RecordSink:
    def __init__(self):
        self.records = {}

    def put_object(self, oid, otype, state):
        self.records[oid] = (otype, state)

    def put_pages(self, oid, pages):
        pass


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("open"), st.integers(0, 5)),
        st.tuples(st.just("write"), st.integers(0, 7)),
        st.tuples(st.just("close"), st.integers(0, 7)),
        st.tuples(st.just("pipe"), st.just(0)),
        st.tuples(st.just("ckpt"), st.just(0)),
    ),
    min_size=1, max_size=20)


@settings(max_examples=15, deadline=None)
@given(_ops)
def test_merged_view_equals_full_serialization(op_list):
    """Over any random mutate/checkpoint interleaving, the merged
    (newest-wins, liveness-filtered) record view at the last
    checkpoint decodes to exactly what a from-scratch full
    serialization of the live kernel state would write."""
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel
    proc = kernel.spawn("prop")
    group = sls.attach(proc, periodic=False)

    files = []
    for op, arg in op_list:
        if op == "open":
            files.append(kernel.open(proc, f"/prop{arg}",
                                     O_CREAT | O_RDWR))
        elif op == "write" and files:
            kernel.write(proc, files[arg % len(files)], b"w" * 24)
        elif op == "close" and files:
            kernel.close(proc, files.pop(arg % len(files)))
        elif op == "pipe":
            kernel.pipe(proc)
        elif op == "ckpt":
            sls.checkpoint(group, sync=True)
    final = sls.checkpoint(group, sync=True)

    merged, _pages = sls.store.merged_view(final.info.ckpt_id)
    on_disk = {
        oid: (otype, state)
        for oid, (otype, state)
        in sls.store.read_object_records(merged).items()
        if otype != "vmobject"          # flush items, not serializer output
    }

    sink = _RecordSink()
    CheckpointSerializer(kernel, group, sls.store, sink).serialize_all()
    scratch = {}
    for oid, (otype, state) in sink.records.items():
        _oid, r_otype, r_state = records.decode_object(
            records.encode_object(oid, otype, state))
        scratch[oid] = (r_otype, r_state)

    assert on_disk == scratch
