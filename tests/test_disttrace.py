"""Distributed trace propagation: one checkpoint trace spanning
primary → replicas → quorum ack.

The acceptance criterion from the ISSUE: a quorum-acked checkpoint's
trace contains spans from at least W distinct nodes, the Chrome
export gives each node its own lane, and the export still satisfies
the schema validator.
"""

import pytest

from repro import Machine, load_aurora
from repro.core import telemetry, tracing
from repro.core.cluster import SLSCluster
from repro.units import PAGE_SIZE

NODES = 5
AZS = 3
SEGMENT_BYTES = 512


@pytest.fixture(autouse=True)
def fresh_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _cluster(name="svc"):
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn(name)
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, name=name, periodic=False)
    cluster = SLSCluster(sls, group, nodes=NODES, azs=AZS,
                         segment_bytes=SEGMENT_BYTES)
    return machine, sls, proc, addr, group, cluster


def _commit_and_pump(sls, proc, addr, group, cluster, payload, name):
    proc.vmspace.write(addr, payload)
    result = sls.checkpoint(group, name=name, sync=True)
    cluster.pump()
    return result


# -- the wire format --------------------------------------------------------------------


def test_trace_context_round_trips_through_the_wire_form():
    machine = Machine()
    with tracing.trace(machine.clock, tracing.CHECKPOINT, group=7,
                       tenant="svc") as trace_obj:
        ctx = tracing.TraceContext.capture()
        assert ctx is not None
        assert (ctx.trace_id, ctx.group, ctx.tenant) == \
            (trace_obj.trace_id, 7, "svc")
        wire = ctx.to_wire()
    # The wire form is plain serde vocabulary and survives a rebuild.
    assert all(v is None or isinstance(v, (int, str))
               for v in wire.values())
    back = tracing.TraceContext.from_wire(wire)
    assert (back.trace_id, back.span_id, back.group, back.tenant) == \
        (ctx.trace_id, ctx.span_id, 7, "svc")
    # A rebuilt context resolves through the tracer's finished ring.
    assert back.resolve() is trace_obj


def test_trace_context_rejects_junk_wire_payloads():
    assert tracing.TraceContext.capture() is None
    assert tracing.TraceContext.from_wire(None) is None
    assert tracing.TraceContext.from_wire("gibberish") is None
    assert tracing.TraceContext.from_wire({"trace_id": True}) is None
    assert tracing.TraceContext.from_wire({"span_id": 3}) is None


def test_spans_recorded_under_a_resolved_context_join_the_trace():
    machine = Machine()
    registry = telemetry.registry()
    with tracing.trace(machine.clock, tracing.CHECKPOINT,
                       group=1) as trace_obj:
        wire = tracing.TraceContext.capture().to_wire()
    ctx = tracing.TraceContext.from_wire(wire)
    with tracing.use(ctx.resolve()):
        with registry.span(machine.clock, "repl.ship", node=3):
            pass
    (span,) = [s for s in trace_obj.spans if s.name == "repl.ship"]
    assert span.trace_id == trace_obj.trace_id
    assert span.labels["node"] == 3


# -- the replicated checkpoint trace ----------------------------------------------------


def test_quorum_acked_checkpoint_trace_spans_w_distinct_nodes():
    machine, sls, proc, addr, group, cluster = _cluster()
    result = _commit_and_pump(sls, proc, addr, group, cluster,
                              b"payload-v1", "v1")
    assert cluster.durable == result.info.ckpt_id
    (trace_obj,) = tracing.tracer().traces(tracing.CHECKPOINT,
                                           group=group.group_id)
    repl = [s for s in trace_obj.spans if s.name.startswith("repl.")]
    nodes = {s.labels["node"] for s in repl if "node" in s.labels}
    assert len(nodes) >= cluster.write_quorum
    # Every protocol leg is represented, tenant-attributed.
    names = {s.name for s in repl}
    assert {"repl.ship", "repl.deliver", "repl.apply",
            "repl.ack"} <= names
    assert all(s.labels.get("tenant") == "svc" for s in repl)
    # Ack marks are instants on the primary's clock.
    assert all(s.duration_ns == 0 for s in repl
               if s.name == "repl.ack")


def test_chrome_export_gives_each_node_its_own_lane():
    machine, sls, proc, addr, group, cluster = _cluster()
    _commit_and_pump(sls, proc, addr, group, cluster, b"x" * 64, "v1")
    (trace_obj,) = tracing.tracer().traces(tracing.CHECKPOINT,
                                           group=group.group_id)
    export = tracing.chrome_trace([trace_obj])
    tracing.validate_chrome_trace(export)
    lanes = {}
    for entry in export["traceEvents"]:
        if entry["name"].startswith("repl."):
            lanes.setdefault(entry["tid"], set()).add(entry["name"])
    # One lane per node, disjoint from the primary's lane id.
    assert len(lanes) == NODES
    assert trace_obj.trace_id not in lanes
    assert all(tid >= tracing.NODE_LANE_BASE for tid in lanes)
    # Primary-side pipeline spans stay on the trace's own lane.
    primary = [entry for entry in export["traceEvents"]
               if entry["tid"] == trace_obj.trace_id]
    assert any(entry["name"] == "checkpoint" for entry in primary)


def test_segment_repair_spans_land_in_the_originating_trace():
    machine, sls, proc, addr, group, cluster = _cluster()
    _commit_and_pump(sls, proc, addr, group, cluster, b"y" * 256, "v1")
    victim = cluster.nodes[0]
    victim.wipe()
    victim.rescan()
    report = cluster.repair()
    assert report["segments"] > 0
    (trace_obj,) = tracing.tracer().traces(tracing.CHECKPOINT,
                                           group=group.group_id)
    repairs = [s for s in trace_obj.spans if s.name == "repl.repair"]
    assert repairs, "repair recorded no span in the checkpoint trace"
    assert {s.labels["node"] for s in repairs} == {victim.node_id}
    assert all(s.labels.get("tenant") == "svc" for s in repairs)


def test_async_commit_hook_pump_still_joins_the_checkpoint_trace():
    """The commit hook fires after the trace scope closed; the
    capture falls back to the group's newest finished checkpoint
    trace, so hook-driven pumps still propagate."""
    machine, sls, proc, addr, group, cluster = _cluster()
    cluster.install()
    proc.vmspace.write(addr, b"hooked")
    result = sls.checkpoint(group, name="v1", sync=True)
    assert cluster.durable == result.info.ckpt_id
    (trace_obj,) = tracing.tracer().traces(tracing.CHECKPOINT,
                                           group=group.group_id)
    nodes = {s.labels["node"] for s in trace_obj.spans
             if s.name == "repl.apply"}
    assert len(nodes) >= cluster.write_quorum
    cluster.stop()
