"""The store scrubber: every injected corruption must be found.

The acceptance bar from the versioned-store literature: a scrub pass
walks superblocks → checkpoint records → extents and catches (a) a
flipped byte in any record extent, (b) a dangling record pointer,
(c) a shadow chain grown past the eager-collapse bound — plus it stays
silent on a healthy store.
"""

import pytest

from repro import Machine, load_aurora
from repro.core.cli import main
from repro.core.orchestrator import Orchestrator
from repro.core.shadowing import NONE
from repro.hw.memory import Page
from repro.objstore.oid import CLASS_MEMORY, make_oid
from repro.objstore import scrub as scrub_mod
from repro.objstore.scrub import (CHAIN, CHECKSUM, DANGLING, REFCOUNT,
                                  scrub)
from repro.objstore.store import ObjectStore
from repro.units import PAGE_SIZE

MEM_OID = make_oid(CLASS_MEMORY, 42)


def _store_with_chain(machine, nckpts=3):
    store = ObjectStore(machine)
    store.format()
    parent = None
    infos = []
    for index in range(nckpts):
        txn = store.begin_checkpoint(group_id=4, parent=parent)
        txn.put_object(MEM_OID, "vmobject", {"step": index})
        txn.put_pages(MEM_OID, {0: Page(data=b"page-%d" % index * 16)})
        info = store.commit(txn, sync=True)
        infos.append(info)
        parent = info.ckpt_id
    return store, infos


def _flip_byte(machine, offset, index=0):
    payload = machine.storage.read(offset)
    assert isinstance(payload, bytes)
    flipped = (payload[:index] + bytes([payload[index] ^ 0xFF]) +
               payload[index + 1:])
    machine.storage.discard_extent(offset)
    machine.storage.write(offset, flipped)


def test_clean_store_scrubs_clean():
    machine = Machine()
    store, _infos = _store_with_chain(machine)
    report = scrub(store)
    assert report.ok, report.findings
    assert report.checkpoints_scanned == 3
    assert report.records_verified == 3
    assert report.page_extents_verified == 3
    assert report.superblocks_valid == 2


def test_full_aurora_app_store_scrubs_clean(aurora):
    machine, sls = aurora
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"content")
    group = sls.attach(proc, periodic=False)
    sls.checkpoint(group, sync=True)
    sls.checkpoint(group, sync=True)
    report = scrub(sls.store, sls=sls)
    assert report.ok, report.findings
    assert report.chains_checked >= 1


def test_scrub_detects_flipped_record_byte():
    """(a) A single flipped byte in an object record extent."""
    machine = Machine()
    store, infos = _store_with_chain(machine)
    extent, _length = infos[1].object_records[MEM_OID]
    _flip_byte(machine, extent, index=20)
    report = scrub(store)
    assert not report.ok
    assert any(f.kind == CHECKSUM and f.ckpt_id == infos[1].ckpt_id
               for f in report.findings), report.findings


def test_scrub_detects_flipped_meta_byte():
    machine = Machine()
    store, infos = _store_with_chain(machine)
    _flip_byte(machine, infos[0].meta_extent[0], index=20)
    report = scrub(store)
    assert any(f.kind == CHECKSUM for f in report.findings), report.findings


def test_scrub_detects_dangling_record_pointer():
    """(b) Checkpoint metadata referencing an extent that is gone."""
    machine = Machine()
    store, infos = _store_with_chain(machine)
    extent, _length = infos[2].object_records[MEM_OID]
    machine.storage.discard_extent(extent)
    report = scrub(store)
    assert any(f.kind == DANGLING and str(extent) in f.detail
               for f in report.findings), report.findings


def test_scrub_detects_dangling_page_extent():
    machine = Machine()
    store, infos = _store_with_chain(machine)
    locator = infos[0].pages[MEM_OID][0]
    machine.storage.discard_extent(locator.extent)
    report = scrub(store)
    assert any(f.kind == DANGLING and "page 0" in f.detail
               for f in report.findings), report.findings


def test_scrub_detects_refcount_drift():
    machine = Machine()
    store, _infos = _store_with_chain(machine)
    offset = next(iter(store.extent_refs))
    store.extent_refs[offset] += 1
    report = scrub(store)
    assert any(f.kind == REFCOUNT and str(offset) in f.detail
               for f in report.findings), report.findings


def test_scrub_detects_overgrown_shadow_chain():
    """(c) The never-collapse ablation grows chains past the §6 bound;
    the scrubber must flag them."""
    machine = Machine()
    sls = load_aurora(machine)
    # Rebuild the orchestrator with collapse disabled (ablation mode).
    sls = Orchestrator(machine, sls.store, sls.slsfs,
                       collapse_direction=NONE)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=False)
    for round_no in range(scrub_mod.MAX_SHADOW_DEPTH + 1):
        proc.vmspace.write(addr, b"round-%d" % round_no)
        sls.checkpoint(group, sync=True)
    report = scrub(sls.store, sls=sls)
    assert any(f.kind == CHAIN for f in report.findings), report.findings


def test_eager_collapse_keeps_chains_within_bound(aurora):
    """The paper's reverse-collapse configuration never trips the
    chain check, however many checkpoints run."""
    machine, sls = aurora
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=False)
    for round_no in range(6):
        proc.vmspace.write(addr, b"round-%d" % round_no)
        sls.checkpoint(group, sync=True)
    report = scrub(sls.store, sls=sls)
    assert not [f for f in report.findings if f.kind == CHAIN], \
        report.findings


def test_scrub_counters_land_in_telemetry():
    from repro.core import telemetry

    machine = Machine()
    store, _infos = _store_with_chain(machine)
    before = telemetry.registry().value("sls.scrub.runs")
    report = scrub(store)
    registry = telemetry.registry()
    assert registry.value("sls.scrub.runs") == before + 1
    assert report.stats["checkpoints"] == report.checkpoints_scanned
    assert report.stats["findings"] == len(report.findings)


def test_cli_scrub_clean_and_corrupt(tmp_path, capsys):
    image = str(tmp_path / "aurora.img")
    assert main(["init", image]) == 0
    assert main(["spawn", image, "demo", "--memory-kib", "64"]) == 0
    assert main(["run", image, "1", "--millis", "20"]) == 0
    assert main(["scrub", image]) == 0
    out = capsys.readouterr().out
    assert "store is clean" in out

    # Corrupt one checkpoint's metadata record inside the image, then
    # scrub again: nonzero exit and a printed finding.
    from repro.core.cli import _boot_from_image, _save_image
    from repro.objstore.store import ObjectStore as Store

    machine = _boot_from_image(image)
    store = Store(machine)
    assert store.mount()
    info = next(info for info in store.checkpoints.values()
                if info.object_records)
    _flip_byte(machine, info.meta_extent[0], index=24)
    _save_image(machine, image)

    assert main(["scrub", image]) == 1
    out = capsys.readouterr().out
    assert "finding" in out
