"""Restore edge cases: resource conflicts, unmapped regions, lazy
interactions, double incarnations."""

import pytest

from repro import Machine, load_aurora
from repro.errors import AddressInUse
from repro.kernel.net.tcp import TCPSocket
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    group = sls.attach(proc, periodic=False)
    return machine, sls, proc, group


def _crash_reboot(machine):
    machine.crash()
    machine.boot()
    return load_aurora(machine)


def test_restore_conflicting_port_surfaces_address_in_use(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fd = kernel.tcp_socket(proc)
    sock = kernel.sock_of(proc, fd)
    sock.bind("10.0.0.1", 8080)
    sock.listen()
    sls.checkpoint(group, sync=True)
    gid = group.group_id
    sls2 = _crash_reboot(machine)
    # Someone else grabbed the port before the restore.
    squatter = TCPSocket(machine.kernel)
    squatter.bind("10.0.0.1", 8080)
    with pytest.raises(AddressInUse):
        sls2.restore(gid)


def test_munmapped_region_absent_after_restore(setup):
    machine, sls, proc, group = setup
    keep = proc.vmspace.mmap(4 * PAGE_SIZE, name="keep")
    scratch = proc.vmspace.mmap(4 * PAGE_SIZE, name="scratch")
    proc.vmspace.write(keep, b"keep")
    proc.vmspace.write(scratch, b"scratch")
    sls.checkpoint(group, sync=True)
    proc.vmspace.munmap(scratch, 4 * PAGE_SIZE)
    sls.checkpoint(group, sync=True)
    gid = group.group_id
    sls2 = _crash_reboot(machine)
    result = sls2.restore(gid)
    assert result.root.vmspace.read(keep, 4) == b"keep"
    from repro.errors import SegmentationFault
    with pytest.raises(SegmentationFault):
        result.root.vmspace.read(scratch, 1)


def test_lazy_restore_then_immediate_checkpoint(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(64 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 64, seed=1)
    proc.vmspace.write(addr, b"lazy then ckpt")
    sls.checkpoint(group, sync=True)
    gid = group.group_id
    sls2 = _crash_reboot(machine)
    result = sls2.restore(gid, lazy=True)
    # Checkpoint the lazily restored app before touching anything.
    res = sls2.checkpoint(result.group, sync=True)
    assert res.info.complete
    # And the content remains reachable afterwards.
    assert result.root.vmspace.read(addr, 14) == b"lazy then ckpt"


def test_second_incarnation_after_detach(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"v1")
    sls.checkpoint(group, sync=True)
    gid = group.group_id
    sls2 = _crash_reboot(machine)
    first = sls2.restore(gid, periodic=False)
    # Retire the first incarnation, then restore again.
    sls2.detach(first.group)
    for p in list(first.processes):
        p.exit(0)
    second = sls2.restore(gid, periodic=False)
    assert second.root.vmspace.read(addr, 2) == b"v1"
    assert second.root.pid != first.root.pid  # distinct global pids
    assert second.root.local_pid == first.root.local_pid


def test_restore_after_detach_keeps_history(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"before-detach")
    sls.checkpoint(group, sync=True)
    gid = group.group_id
    sls.detach(group)
    # Detach stops persistence but the history stays restorable.
    assert gid in sls.restorable_groups()
    result = sls.restore(gid, periodic=False)
    assert result.root.vmspace.read(addr, 13) == b"before-detach"


def test_suspend_resume_suspend_cycle(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    gid = group.group_id
    for round_no in range(3):
        current = sls.groups.get(gid)
        if current is None:
            result = sls.resume(gid)
            current = result.group
            root = result.root
        else:
            root = proc
        root.vmspace.write(addr, f"round-{round_no}".encode())
        sls.suspend(current)
    result = sls.resume(gid)
    assert result.root.vmspace.read(addr, 7) == b"round-2"
