"""Address spaces: faults, COW, fork, bulk access."""

import pytest

from repro.errors import InvalidArgument, SegmentationFault
from repro.kernel.vm.vmmap import (INHERIT_SHARE, PROT_READ, PROT_WRITE)
from repro.kernel.vm.vmobject import VMObject
from repro.machine import Machine
from repro.units import PAGE_SIZE


@pytest.fixture
def kernel():
    return Machine().kernel


@pytest.fixture
def proc(kernel):
    return kernel.spawn("app")


def test_write_then_read(proc):
    addr = proc.vmspace.mmap(64 * 1024)
    proc.vmspace.write(addr + 10, b"hello")
    assert proc.vmspace.read(addr + 10, 5) == b"hello"


def test_read_of_untouched_memory_is_zero(proc):
    addr = proc.vmspace.mmap(8 * 1024)
    assert proc.vmspace.read(addr, 16) == b"\x00" * 16


def test_write_spanning_pages(proc):
    addr = proc.vmspace.mmap(3 * PAGE_SIZE)
    data = bytes(range(256)) * 40  # 10240 bytes: spans 3 pages
    proc.vmspace.write(addr + 100, data)
    assert proc.vmspace.read(addr + 100, len(data)) == data


def test_unmapped_access_faults(proc):
    with pytest.raises(SegmentationFault):
        proc.vmspace.read(0xDEAD0000, 4)
    with pytest.raises(SegmentationFault):
        proc.vmspace.write(0xDEAD0000, b"x")


def test_write_to_readonly_mapping_faults(proc, kernel):
    obj = VMObject(kernel, 2)
    addr = proc.vmspace.mmap(2 * PAGE_SIZE, protection=PROT_READ,
                             vmobject=obj)
    with pytest.raises(SegmentationFault):
        proc.vmspace.write(addr, b"x")


def test_munmap_removes_mapping(proc):
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="scratch")
    proc.vmspace.write(addr, b"x")
    proc.vmspace.munmap(addr, 4 * PAGE_SIZE)
    with pytest.raises(SegmentationFault):
        proc.vmspace.read(addr, 1)


def test_fork_cow_isolation(kernel, proc):
    addr = proc.vmspace.mmap(16 * PAGE_SIZE)
    proc.vmspace.write(addr, b"original")
    child = kernel.fork(proc)
    # Both see the pre-fork data.
    assert child.vmspace.read(addr, 8) == b"original"
    # Parent writes are invisible to the child and vice versa.
    proc.vmspace.write(addr, b"parent!!")
    child.vmspace.write(addr + PAGE_SIZE, b"child")
    assert child.vmspace.read(addr, 8) == b"original"
    assert proc.vmspace.read(addr, 8) == b"parent!!"
    assert proc.vmspace.read(addr + PAGE_SIZE, 5) == b"\x00" * 5


def test_fork_shares_inherit_share_mappings(kernel, proc):
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, inheritance=INHERIT_SHARE)
    child = kernel.fork(proc)
    proc.vmspace.write(addr, b"shared-write")
    assert child.vmspace.read(addr, 12) == b"shared-write"


def test_fork_cow_creates_shadows_lazily(kernel, proc):
    addr = proc.vmspace.mmap(4 * PAGE_SIZE)
    proc.vmspace.write(addr, b"data")
    original = proc.vmspace.entry_at(addr).vmobject
    child = kernel.fork(proc)
    assert proc.vmspace.entry_at(addr).vmobject is original
    proc.vmspace.write(addr, b"DATA")
    # First write after fork shadowed the object.
    assert proc.vmspace.entry_at(addr).vmobject is not original
    assert proc.vmspace.entry_at(addr).vmobject.backing is original


def test_grandchild_fork_chain(kernel, proc):
    addr = proc.vmspace.mmap(2 * PAGE_SIZE)
    proc.vmspace.write(addr, b"gen0")
    c1 = kernel.fork(proc)
    c1.vmspace.write(addr, b"gen1")
    c2 = kernel.fork(c1)
    c2.vmspace.write(addr, b"gen2")
    assert proc.vmspace.read(addr, 4) == b"gen0"
    assert c1.vmspace.read(addr, 4) == b"gen1"
    assert c2.vmspace.read(addr, 4) == b"gen2"


def test_touch_takes_cow_faults(proc):
    addr = proc.vmspace.mmap(8 * PAGE_SIZE)
    faults = proc.vmspace.touch(addr, 8, seed=1)
    assert faults == 8
    # Already writable: second touch takes no faults.
    faults = proc.vmspace.touch(addr, 8, seed=2)
    assert faults == 0


def test_fill_populates_without_faults(proc):
    addr = proc.vmspace.mmap(16 * PAGE_SIZE)
    proc.vmspace.fill(addr, 16, seed=9)
    assert proc.vmspace.pmap.fault_count == 0
    assert proc.vmspace.resident_pages() == 16


def test_writable_objects_excludes_readonly_and_excluded(proc, kernel):
    rw = proc.vmspace.mmap(PAGE_SIZE, name="rw")
    ro_obj = VMObject(kernel, 1)
    proc.vmspace.mmap(PAGE_SIZE, protection=PROT_READ, vmobject=ro_obj)
    excl = proc.vmspace.mmap(PAGE_SIZE, name="excluded")
    proc.vmspace.entry_at(excl).sls_excluded = True
    objs = proc.vmspace.writable_objects()
    names = {obj.name for obj in objs}
    assert "rw" in names
    assert "excluded" not in names
    assert len(objs) == 1


def test_fork_charges_cow_setup_time(kernel, proc):
    addr = proc.vmspace.mmap(256 * PAGE_SIZE)
    proc.vmspace.fill(addr, 256, seed=0)
    before = kernel.clock.now()
    kernel.fork(proc)
    elapsed = kernel.clock.now() - before
    # 256 writable PTEs downgraded at ~60 ns each.
    assert elapsed >= 256 * 50
