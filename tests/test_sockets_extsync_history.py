"""Socket syscall plumbing, transparent external synchrony, and
bounded execution history."""

import pytest

from repro import Machine, load_aurora
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    return machine, sls


def _tcp_pair(kernel, proc, port=7000):
    sfd = kernel.tcp_socket(proc)
    server = kernel.sock_of(proc, sfd)
    server.bind("10.0.0.1", port)
    server.listen()
    cfd = kernel.tcp_socket(proc)
    kernel.sock_of(proc, cfd).connect("10.0.0.1", port)
    afd = kernel.accept(proc, sfd)
    return cfd, afd


def test_socket_write_read_syscalls(setup):
    machine, sls = setup
    kernel = machine.kernel
    proc = kernel.spawn("app")
    cfd, afd = _tcp_pair(kernel, proc)
    assert kernel.write(proc, cfd, b"over the wire") == 13
    assert kernel.read(proc, afd, 13) == b"over the wire"


def test_unix_socket_syscalls(setup):
    machine, sls = setup
    kernel = machine.kernel
    proc = kernel.spawn("app")
    lfd, rfd = kernel.socketpair(proc)
    kernel.write(proc, lfd, b"dgram")
    assert kernel.read(proc, rfd, 100) == b"dgram"


def test_group_socket_sends_are_buffered_transparently(setup):
    """A TCP send from an external-synchrony group is withheld until
    the next checkpoint commits — with zero application changes."""
    machine, sls = setup
    kernel = machine.kernel
    proc = kernel.spawn("server")
    cfd, _afd = _tcp_pair(kernel, proc)
    group = sls.attach(proc, periodic=False, external_synchrony=True)
    kernel.write(proc, cfd, b"response")
    assert sls.extsync.pending_for(group) == 1
    sls.checkpoint(group, sync=True)
    assert sls.extsync.pending_for(group) == 0
    assert sls.extsync.stats["released"] == 1


def test_fdctl_nosync_bypasses_transparent_buffering(setup):
    machine, sls = setup
    kernel = machine.kernel
    proc = kernel.spawn("server")
    cfd, _afd = _tcp_pair(kernel, proc)
    group = sls.attach(proc, periodic=False, external_synchrony=True)
    from repro.core.api import AuroraAPI
    AuroraAPI(sls, proc).sls_fdctl(cfd, nosync=True)
    kernel.write(proc, cfd, b"read-only reply")
    assert sls.extsync.pending_for(group) == 0
    assert sls.extsync.stats["bypassed"] == 1


def test_non_extsync_group_sends_unbuffered(setup):
    machine, sls = setup
    kernel = machine.kernel
    proc = kernel.spawn("server")
    cfd, _afd = _tcp_pair(kernel, proc)
    group = sls.attach(proc, periodic=False)  # default: off (§8)
    kernel.write(proc, cfd, b"immediate")
    assert sls.extsync.pending_for(group) == 0


# -- bounded history --------------------------------------------------------------------


def test_history_limit_trims_old_checkpoints(setup):
    machine, sls = setup
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=False, history_limit=3)
    for step in range(8):
        proc.vmspace.write(addr, f"s{step}".encode())
        sls.checkpoint(group, sync=True)
    chain = sls.store.checkpoints_for(group.group_id,
                                      include_partial=True)
    assert len(chain) == 3
    # The newest state is intact despite the trimming.
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    assert result.root.vmspace.read(addr, 2) == b"s7"


def test_history_limit_reclaims_space(setup):
    machine, sls = setup
    proc = machine.kernel.spawn("hog")
    addr = proc.vmspace.mmap(512 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 512, seed=0)

    unlimited = sls.attach(proc, periodic=False)
    for step in range(6):
        proc.vmspace.touch(addr, 256, seed=step)
        sls.checkpoint(unlimited, sync=True)
    unbounded_usage = sls.store.used_bytes()
    sls.store.retain_last(unlimited.group_id, keep=1)
    assert sls.store.used_bytes() < unbounded_usage
