"""External synchrony: buffer-until-commit semantics."""

import pytest

from repro import Machine, load_aurora
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("server")
    group = sls.attach(proc, periodic=False, external_synchrony=True)
    return machine, sls, proc, group


def test_send_withheld_until_checkpoint_commits(setup):
    machine, sls, proc, group = setup
    released = []
    send = sls.extsync.buffer_send(group, 100, released.append)
    assert send is not None
    assert released == []
    sls.checkpoint(group)         # seals the send to this checkpoint
    assert released == []         # flush not done yet
    machine.loop.drain()          # flush completes -> commit -> release
    assert len(released) == 1
    assert released[0] >= send.sent_at


def test_release_time_is_commit_time(setup):
    machine, sls, proc, group = setup
    addr = proc.vmspace.mmap(1024 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 1024, seed=0)
    released = []
    sls.extsync.buffer_send(group, 64, released.append)
    res = sls.checkpoint(group)
    stop_done = machine.clock.now()
    machine.loop.drain()
    assert released[0] > stop_done  # waited for the 4 MiB flush


def test_nosync_bypasses_buffer(setup):
    machine, sls, proc, group = setup
    released = []
    send = sls.extsync.buffer_send(group, 10, released.append,
                                   nosync=True)
    assert send is None
    assert released == [machine.clock.now()]
    assert sls.extsync.stats["bypassed"] == 1


def test_group_without_extsync_never_buffers():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("p")
    group = sls.attach(proc, periodic=False)  # extsync off by default
    released = []
    assert sls.extsync.buffer_send(group, 10, released.append) is None
    assert len(released) == 1


def test_sends_batch_to_next_checkpoint(setup):
    machine, sls, proc, group = setup
    released = []
    for i in range(5):
        sls.extsync.buffer_send(group, i, released.append)
    assert sls.extsync.pending_for(group) == 5
    sls.checkpoint(group, sync=True)
    assert len(released) == 5
    assert sls.extsync.pending_for(group) == 0


def test_messages_after_seal_wait_for_next_checkpoint(setup):
    machine, sls, proc, group = setup
    early, late = [], []
    sls.extsync.buffer_send(group, 1, early.append)
    sls.checkpoint(group, sync=True)
    sls.extsync.buffer_send(group, 2, late.append)
    assert early and not late
    sls.checkpoint(group, sync=True)
    assert late


def test_delay_statistics(setup):
    machine, sls, proc, group = setup
    sls.extsync.buffer_send(group, 1)
    machine.clock.advance(3 * MSEC)
    sls.checkpoint(group, sync=True)
    assert sls.extsync.stats["released"] == 1
    assert sls.extsync.stats["delay_ns_total"] >= 3 * MSEC
