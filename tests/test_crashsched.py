"""Crash-schedule exploration: a crash at *any* instant of a
checkpoint restores the last durable checkpoint (§5, §7).

The smoke tests (tier-1) cover every pipeline stage boundary plus a
fixed-seed sample of IO indices; the exhaustive sweep over every IO
index of a full checkpoint/commit runs under ``-m slow`` (CI's
crash-schedule job).  The remaining tests exercise the other fault
kinds: torn superblock writes, injected ENOSPC, silent bit flips.
"""

import random

import pytest

from repro import Machine, load_aurora
from repro.core.faults import (AFTER, BEFORE, FaultPlan, InjectedCrash,
                               NOSPACE)
from repro.core.pipeline import STAGE_ORDER
from repro.errors import CorruptRecord, NoSpace
from repro.hw.memory import Page
from repro.objstore.oid import CLASS_MEMORY, make_oid
from repro.objstore.store import ObjectStore
from repro.units import PAGE_SIZE

from tests.crashsched import (ClusterScheduleExplorer, ClusterWorkload,
                              CounterAppWorkload, CrashScheduleExplorer,
                              IncrementalCounterWorkload, IOCrash,
                              StageCrash)

SMOKE_SEED = 0xA0DA
SMOKE_IO_SAMPLES = 3


@pytest.fixture(scope="module")
def explorer():
    return CrashScheduleExplorer()


@pytest.fixture(scope="module")
def schedule(explorer):
    """Probed (and determinism-checked) schedule, shared per module."""
    return explorer.probe()


def test_probe_covers_every_stage_boundary(schedule):
    """The schedule space includes all N+1 boundaries of the §4.1
    pipeline, in order."""
    expected = [(stage, BEFORE) for stage in STAGE_ORDER]
    expected.append((STAGE_ORDER[-1], AFTER))
    assert schedule.boundaries == expected


def test_probe_finds_commit_point(schedule):
    """The superblock flip is inside the IO schedule, not at its very
    start (data and records precede it)."""
    assert 0 < schedule.flip_index < schedule.io_count


def test_crash_at_every_stage_boundary_restores_durable_state(
        explorer, schedule):
    """Tier-1 slice of the sweep: all stage boundaries."""
    points = [StageCrash(stage, edge)
              for stage, edge in schedule.boundaries]
    outcomes = explorer.sweep(points, schedule)
    assert all(outcome.ok for outcome in outcomes), \
        [outcome for outcome in outcomes if not outcome.ok]
    # Boundaries before the flush see V1; the final boundary sees V2.
    assert outcomes[0].restored == CounterAppWorkload.V1
    assert outcomes[-1].restored == CounterAppWorkload.V2


def test_crash_at_sampled_io_indices_restores_durable_state(
        explorer, schedule):
    """Tier-1 slice: a fixed-seed sample of IO indices, always
    including the commit point itself and its immediate successor."""
    rng = random.Random(SMOKE_SEED)
    indices = {schedule.flip_index, schedule.flip_index + 1}
    indices.update(rng.sample(range(schedule.io_count), SMOKE_IO_SAMPLES))
    indices = {index for index in indices if index < schedule.io_count}
    outcomes = explorer.sweep([IOCrash(index)
                               for index in sorted(indices)], schedule)
    assert all(outcome.ok for outcome in outcomes), \
        [outcome for outcome in outcomes if not outcome.ok]


@pytest.mark.slow
def test_exhaustive_crash_schedule_sweep(explorer, schedule):
    """Every stage boundary AND every IO index of one full
    checkpoint/commit — the complete schedule, with exhaustiveness
    asserted — restores to the last durable checkpoint."""
    points = explorer.all_points(schedule)
    # Exhaustiveness: all N+1 stage boundaries...
    stage_points = [p for p in points if isinstance(p, StageCrash)]
    assert {(p.stage, p.edge) for p in stage_points} == \
        set([(s, BEFORE) for s in STAGE_ORDER] + [(STAGE_ORDER[-1], AFTER)])
    # ...and every IO index of the commit, gap-free.
    io_points = [p for p in points if isinstance(p, IOCrash)]
    assert [p.index for p in io_points] == list(range(schedule.io_count))
    assert schedule.io_count > 0

    outcomes = explorer.sweep(points, schedule)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    assert not failures, failures
    # Both durable states were actually exercised by the sweep.
    restored = {outcome.restored for outcome in outcomes}
    assert restored == {CounterAppWorkload.V1, CounterAppWorkload.V2}


@pytest.fixture(scope="module")
def incr_explorer():
    """Explorer whose durable and probed checkpoints are incremental."""
    return CrashScheduleExplorer(IncrementalCounterWorkload())


@pytest.fixture(scope="module")
def incr_schedule(incr_explorer):
    return incr_explorer.probe()


def test_incremental_crash_at_stage_boundaries_restores_durable(
        incr_explorer, incr_schedule):
    """Crashing between two *incremental* checkpoints (at every stage
    boundary of the probed one) restores exactly the last durable
    incremental checkpoint — whose records partly live in the parent
    full delta and resolve through the chain."""
    points = [StageCrash(stage, edge)
              for stage, edge in incr_schedule.boundaries]
    outcomes = incr_explorer.sweep(points, incr_schedule)
    assert all(outcome.ok for outcome in outcomes), \
        [outcome for outcome in outcomes if not outcome.ok]
    assert outcomes[0].restored == IncrementalCounterWorkload.V1
    assert outcomes[-1].restored == IncrementalCounterWorkload.V2


def test_incremental_crash_around_commit_point_restores_durable(
        incr_explorer, incr_schedule):
    """The incremental delta's commit point behaves like the full
    one's: the superblock flip alone makes V2 durable."""
    indices = [incr_schedule.flip_index, incr_schedule.flip_index + 1]
    indices = [i for i in indices if i < incr_schedule.io_count]
    outcomes = incr_explorer.sweep([IOCrash(i) for i in indices],
                                   incr_schedule)
    assert all(outcome.ok for outcome in outcomes), \
        [outcome for outcome in outcomes if not outcome.ok]


def test_torn_superblock_write_falls_back_to_previous_checkpoint(
        explorer, schedule):
    """Tearing the commit's superblock flip (half the record lands,
    then power fails) must leave the previous generation live."""
    workload = explorer.workload
    run = workload.boot()
    plan = FaultPlan(name="torn-flip").torn_at_io(schedule.flip_index)
    run.machine.set_fault_plan(plan)
    with pytest.raises(InjectedCrash):
        workload.checkpoint(run)
    run.machine.crash()
    run.machine.boot()
    sls = load_aurora(run.machine)
    result = sls.restore(run.gid, periodic=False)
    assert workload.read_state(result.root, run.addr) == workload.V1


def test_injected_nospace_fails_checkpoint_not_history(explorer, schedule):
    """ENOSPC mid-flush fails the checkpoint cleanly; after a crash
    the prior checkpoint still restores."""
    workload = explorer.workload
    run = workload.boot()
    plan = FaultPlan(name="enospc").nospace_at_io(1)
    run.machine.set_fault_plan(plan)
    with pytest.raises(NoSpace):
        workload.checkpoint(run)
    assert plan.events[0].kind == NOSPACE
    run.machine.crash()
    run.machine.boot()
    sls = load_aurora(run.machine)
    result = sls.restore(run.gid, periodic=False)
    assert workload.read_state(result.root, run.addr) == workload.V1


def test_bitflip_corrupts_record_detectably():
    """A silent bit flip in an object record write is caught by the
    record checksum on read-back."""
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    machine.set_fault_plan(FaultPlan(name="flip").bitflip_at_io(0))
    txn = store.begin_checkpoint(group_id=7)
    txn.put_object(make_oid(CLASS_MEMORY, 1), "vmobject",
                   {"size_pages": 1})
    info = store.commit(txn, sync=True)
    oid = next(iter(info.object_records))
    with pytest.raises(CorruptRecord):
        store.read_object_record(info.object_records[oid])


def test_seeded_random_plans_are_reproducible(schedule):
    """FaultPlan.random is a pure function of its seed — the CI smoke
    subset depends on replayable fault schedules."""
    for seed in (1, 2, 0xBEEF):
        first = FaultPlan.random(seed, schedule.io_count,
                                 schedule.boundaries)
        second = FaultPlan.random(seed, schedule.io_count,
                                  schedule.boundaries)
        assert first.describe() == second.describe()


@pytest.mark.slow
def test_seeded_random_fault_campaign(explorer, schedule):
    """A fixed-seed campaign of randomized single-fault plans: crashes
    restore durable state; ENOSPC surfaces cleanly; bit flips and torn
    non-commit writes never corrupt what a restore returns silently
    into a *wrong* durable state (restores yield V1 or V2 exactly, or
    fail loudly)."""
    workload = explorer.workload
    for seed in range(12):
        run = workload.boot()
        plan = FaultPlan.random(seed, schedule.io_count,
                                schedule.boundaries)
        run.machine.set_fault_plan(plan)
        try:
            workload.checkpoint(run)
        except (InjectedCrash, NoSpace):
            pass
        run.machine.crash()
        run.machine.boot()
        sls = load_aurora(run.machine)
        try:
            result = sls.restore(run.gid, periodic=False)
        except CorruptRecord:
            continue  # loud failure is acceptable for silent bit flips
        state = workload.read_state(result.root, run.addr)
        assert state in (workload.V1, workload.V2), \
            f"seed {seed} ({plan.describe()}): restored garbage {state!r}"


def test_crash_mid_pipeline_leaves_prior_checkpoint_for_multiproc():
    """A richer workload (forked child + shared pages) crashed between
    shadow and serialize still restores its durable checkpoint."""
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel
    parent = kernel.spawn("parent")
    addr = parent.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    parent.vmspace.write(addr, b"durable")
    group = sls.attach(parent, periodic=False)
    kernel.fork(parent, name="child")
    sls.checkpoint(group, sync=True)
    gid = group.group_id
    parent.vmspace.write(addr, b"doomed!")
    machine.set_fault_plan(
        FaultPlan(name="mid").crash_at_stage("serialize", BEFORE))
    with pytest.raises(InjectedCrash):
        sls.checkpoint(group, sync=True)
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid, periodic=False)
    assert result.root.vmspace.read(addr, 7) == b"durable"
    assert {p.name for p in result.processes} == {"parent", "child"}


# -- fault injection meets the observability layer ---------------------------------


def _crash_at_seal_scenario():
    """One durable checkpoint, then a crash injected before seal.

    Returns the fault events, the failure events and the finished
    checkpoint traces of the run (telemetry freshly reset)."""
    from repro.core import events, telemetry, tracing

    telemetry.reset()
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 8, seed=1)
    group = sls.attach(proc, periodic=False)
    sls.checkpoint(group, sync=True)
    proc.vmspace.fill(addr, 8, seed=2)
    machine.set_fault_plan(
        FaultPlan(name="seal").crash_at_stage("seal", BEFORE))
    with pytest.raises(InjectedCrash):
        sls.checkpoint(group, sync=True)
    faults = [(e.time_ns, dict(e.fields)) for e in
              events.log().matching(events.FAULT_INJECTED)]
    fails = [(e.time_ns, dict(e.fields)) for e in
             events.log().matching(events.CKPT_FAIL)]
    traces = tracing.tracer().traces(tracing.CHECKPOINT,
                                     group=group.group_id)
    return faults, fails, traces


def test_injected_fault_lands_in_event_log_at_deterministic_time():
    """The fault's event-log entry carries the sim-instant it fired —
    and two identical runs produce the identical entry."""
    from repro.core import telemetry

    faults1, fails1, _ = _crash_at_seal_scenario()
    faults2, fails2, _ = _crash_at_seal_scenario()
    telemetry.reset()
    assert len(faults1) == 1
    time_ns, fields = faults1[0]
    assert fields["fault"] == "crash"
    assert fields["stage"] == "seal" and fields["edge"] == BEFORE
    assert faults1 == faults2
    # The orchestrator logged the checkpoint failure at the same
    # deterministic instant, naming the injected crash.
    assert len(fails1) == 1
    assert fails1 == fails2
    assert "InjectedCrash" in fails1[0][1]["error"]


# -- cluster crash scheduling: every replication/quorum boundary -------------------


@pytest.fixture(scope="module")
def cluster_explorer():
    return ClusterScheduleExplorer()


@pytest.fixture(scope="module")
def cluster_schedule(cluster_explorer):
    """Probed (determinism-checked) replication boundary schedule."""
    return cluster_explorer.probe()


def _sampled_indices(schedule, extra_samples=4):
    """Fixed-seed sample always covering the decisive boundaries:
    the first, the last pre-flip, the flip itself, its successor, the
    first repair boundary and the final one."""
    first_repair = next(i for i, (_, b) in enumerate(schedule.repl_log)
                        if b == "repair")
    indices = {0, schedule.flip_index - 1, schedule.flip_index,
               schedule.flip_index + 1, first_repair, schedule.count - 1}
    rng = random.Random(SMOKE_SEED)
    indices.update(rng.sample(range(schedule.count), extra_samples))
    return sorted(index for index in indices
                  if 0 <= index < schedule.count)


def test_cluster_probe_covers_the_whole_protocol(cluster_schedule):
    """The schedule crosses ship/deliver/apply/ack for every reachable
    node and repair for every rebuilt segment — and the durability
    flip sits at the write-quorum-th apply, strictly inside."""
    boundaries = {b for _, b in cluster_schedule.repl_log}
    assert boundaries == {"ship", "deliver", "apply", "ack", "repair"}
    pump_nodes = {n for n, b in cluster_schedule.repl_log if b == "ack"}
    assert pump_nodes == set(range(ClusterWorkload.NODES - 1))
    applies = [i for i, (_, b) in enumerate(cluster_schedule.repl_log)
               if b == "apply"]
    assert cluster_schedule.flip_index == \
        applies[ClusterWorkload.WRITE_QUORUM - 1]
    assert 0 < cluster_schedule.flip_index < cluster_schedule.count - 1


def test_cluster_primary_crash_at_sampled_boundaries(cluster_explorer,
                                                     cluster_schedule):
    """Tier-1 slice: the primary power-fails at the decisive
    boundaries (plus a fixed-seed sample); recovery from replica media
    yields exactly the last quorum-acked checkpoint — V2 at and after
    the write-quorum apply, V1 before it, never a mixture."""
    outcomes = cluster_explorer.sweep(_sampled_indices(cluster_schedule),
                                      cluster_schedule)
    assert all(outcome.ok for outcome in outcomes), \
        [outcome for outcome in outcomes if not outcome.ok]
    restored = {outcome.restored for outcome in outcomes}
    assert restored == {ClusterWorkload.V1, ClusterWorkload.V2}


def test_cluster_node_crash_at_sampled_boundaries(cluster_explorer,
                                                  cluster_schedule):
    """Tier-1 slice: the node *named by the boundary* power-fails
    there instead.  The pump and repair absorb the loss, the write
    quorum still forms, and recovery yields V2 every time."""
    indices = _sampled_indices(cluster_schedule, extra_samples=2)[:5]
    outcomes = cluster_explorer.sweep(indices, cluster_schedule,
                                      mode="node")
    assert all(outcome.ok for outcome in outcomes), \
        [outcome for outcome in outcomes if not outcome.ok]
    assert all(outcome.restored == ClusterWorkload.V2
               for outcome in outcomes)


@pytest.mark.slow
def test_cluster_exhaustive_primary_crash_sweep(cluster_explorer,
                                                cluster_schedule):
    """Every replication/quorum boundary, gap-free: a primary crash at
    each one recovers exactly the last quorum-acked checkpoint.  A
    quorum-acked V2 is always recovered; a non-acked V2 is never even
    partially visible."""
    indices = list(range(cluster_schedule.count))
    outcomes = cluster_explorer.sweep(indices, cluster_schedule)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    assert not failures, failures
    # Both durable states were actually exercised, and they flip
    # exactly once, at the write-quorum apply.
    flips = [outcome.restored == ClusterWorkload.V2
             for outcome in outcomes]
    assert flips == [index >= cluster_schedule.flip_index
                     for index in indices]


@pytest.mark.slow
def test_cluster_exhaustive_node_crash_sweep(cluster_explorer,
                                             cluster_schedule):
    """Any single node crashing at any boundary never loses the
    quorum: the action completes and recovery yields V2 everywhere."""
    indices = list(range(cluster_schedule.count))
    outcomes = cluster_explorer.sweep(indices, cluster_schedule,
                                      mode="node")
    failures = [outcome for outcome in outcomes if not outcome.ok]
    assert not failures, failures
    assert all(outcome.restored == ClusterWorkload.V2
               for outcome in outcomes)


def test_crashed_checkpoint_trace_is_marked_incomplete():
    """The durable checkpoint's trace completes; the crashed one stays
    incomplete with the error recorded — the post-mortem marker."""
    from repro.core import telemetry

    _faults, _fails, traces = _crash_at_seal_scenario()
    telemetry.reset()
    assert len(traces) == 2
    durable, crashed = traces
    assert durable.complete and durable.error is None
    assert not crashed.complete
    assert "InjectedCrash" in crashed.error
    # The crashed trace still holds the stages that did run: quiesce
    # through serialize, but nothing at or past the seal boundary.
    names = {s.name for s in crashed.spans}
    assert "ckpt.serialize" in names
    assert "ckpt.flush" not in names


# -- fenced-failover boundaries: epoch bump, lease expiry, reconcile ---------


from repro.core.cluster import B_EPOCH, B_LEASE, B_RECONCILE  # noqa: E402
from repro.core.faults import PRIMARY  # noqa: E402
from tests.crashsched import FencedScheduleExplorer  # noqa: E402


@pytest.fixture(scope="module")
def fenced_explorer():
    return FencedScheduleExplorer()


@pytest.fixture(scope="module")
def fenced_schedule(fenced_explorer):
    """Probed (determinism-checked) fenced-failover schedule."""
    return fenced_explorer.probe()


def _fencing_indices(schedule):
    return [index for index, (_, boundary)
            in enumerate(schedule.repl_log)
            if boundary in (B_EPOCH, B_LEASE, B_RECONCILE)]


def test_fenced_probe_covers_the_failover_protocol(fenced_schedule):
    """The schedule crosses the lease expiry once, an epoch promise
    on every voter, a reconcile on every node — in protocol order —
    and the fenced V2 never reaches a write-quorum apply."""
    log = fenced_schedule.repl_log
    nodes = list(range(ClusterWorkload.NODES))
    assert [n for n, b in log if b == B_EPOCH] == nodes
    assert [n for n, b in log if b == B_RECONCILE] == nodes
    assert [n for n, b in log if b == B_LEASE] == [PRIMARY]
    kinds = [b for _, b in log]
    assert kinds.index(B_LEASE) < kinds.index(B_EPOCH) \
        < kinds.index(B_RECONCILE)
    assert fenced_schedule.flip_index is None


def test_fenced_failover_crash_at_fencing_boundaries(fenced_explorer,
                                                     fenced_schedule):
    """Tier-1 slice: the lease boundary plus the first and last epoch
    and reconcile boundaries.  A primary crash at any of them
    recovers exactly V1 — the partitioned V2 is never readable, no
    matter how far the epoch bump or the reconciliation got."""
    fencing = _fencing_indices(fenced_schedule)
    by_kind = {}
    for index in fencing:
        by_kind.setdefault(fenced_schedule.repl_log[index][1],
                           []).append(index)
    indices = sorted({ixs[0] for ixs in by_kind.values()}
                     | {ixs[-1] for ixs in by_kind.values()})
    outcomes = fenced_explorer.sweep(indices, fenced_schedule)
    assert all(outcome.ok for outcome in outcomes), \
        [outcome for outcome in outcomes if not outcome.ok]
    assert all(outcome.restored == ClusterWorkload.V1
               for outcome in outcomes)


@pytest.mark.slow
def test_fenced_failover_exhaustive_crash_sweep(fenced_explorer,
                                                fenced_schedule):
    """Every boundary of the partitioned failover, gap-free — the
    stalled ships, the lease expiry, every epoch promise, every
    reconcile — restores V1 and only V1."""
    indices = list(range(fenced_schedule.count))
    outcomes = fenced_explorer.sweep(indices, fenced_schedule)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    assert not failures, failures
    assert {outcome.restored for outcome in outcomes} == \
        {ClusterWorkload.V1}


# -- fleet-scheduler boundaries ----------------------------------------------


from tests.crashsched import FleetScheduleExplorer  # noqa: E402


@pytest.fixture(scope="module")
def fleet_explorer():
    return FleetScheduleExplorer()


@pytest.fixture(scope="module")
def fleet_schedule(fleet_explorer):
    """Probed (determinism-checked) fleet boundary schedule."""
    return fleet_explorer.probe()


def test_fleet_probe_crosses_every_boundary_kind(fleet_schedule):
    """The probed action admits, dispatches and widens at least once,
    and the admit of the late tenant precedes its dispatches."""
    kinds = [boundary for _, boundary in fleet_schedule]
    assert {"admit", "dispatch", "widen"} <= set(kinds)
    late_gid = next(gid for gid, boundary in fleet_schedule
                    if boundary == "admit")
    first_admit = kinds.index("admit")
    first_late_dispatch = next(
        (index for index, (gid, boundary) in enumerate(fleet_schedule)
         if boundary == "dispatch" and gid == late_gid),
        len(fleet_schedule))
    assert first_admit < first_late_dispatch


def test_crash_at_fleet_control_boundaries_restores_durable_state(
        fleet_explorer, fleet_schedule):
    """Tier-1 slice: the admit and every widen boundary, plus the
    first and last dispatch — each tenant restores exactly its newest
    durable checkpoint, never a torn or lost one."""
    dispatch_indices = [index for index, (_, boundary)
                        in enumerate(fleet_schedule)
                        if boundary == "dispatch"]
    indices = sorted(
        {index for index, (_, boundary) in enumerate(fleet_schedule)
         if boundary in ("admit", "widen")}
        | {dispatch_indices[0], dispatch_indices[-1]})
    outcomes = fleet_explorer.sweep(indices, fleet_schedule)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    assert not failures, failures
    # Later crashes never restore an older state than earlier ones.
    assert outcomes, "sweep produced no restorable tenants"


@pytest.mark.slow
def test_fleet_exhaustive_boundary_sweep(fleet_explorer, fleet_schedule):
    """Every fleet boundary of the probed action, exhaustively."""
    outcomes = fleet_explorer.sweep(list(range(len(fleet_schedule))),
                                    fleet_schedule)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    assert not failures, failures
