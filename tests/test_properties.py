"""Property-based tests on the system's core invariants.

These are the heavyweight guarantees the reproduction stands on:

* the VM layer behaves like flat memory under arbitrary write/fork/read
  interleavings;
* a checkpoint/crash/restore cycle always reproduces exactly the
  checkpointed bytes;
* the store's incremental merged views always equal a flat model of
  the same write history, at *every* checkpoint in the chain, before
  and after garbage collection;
* journals replay exactly the appends of the current epoch;
* the extent allocator never hands out overlapping live extents.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, load_aurora
from repro.hw.memory import Page
from repro.machine import Machine as _Machine
from repro.objstore.blockalloc import ExtentAllocator
from repro.objstore.oid import CLASS_MEMORY, make_oid
from repro.objstore.store import ObjectStore
from repro.units import GiB, KiB, MiB, PAGE_SIZE

MEM_OID = make_oid(CLASS_MEMORY, 777)


# -- VM vs flat-memory model -----------------------------------------------------

vm_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 60),
                  st.binary(min_size=1, max_size=200)),
        st.tuples(st.just("fork"), st.just(0), st.just(b"")),
        st.tuples(st.just("switch"), st.integers(0, 3), st.just(b"")),
    ),
    min_size=1, max_size=24,
)


@settings(max_examples=60, deadline=None)
@given(vm_ops)
def test_vmspace_matches_flat_memory_model(ops):
    """Arbitrary interleavings of writes, forks and process switches
    behave exactly like independent flat address spaces with COW
    snapshots at fork points."""
    machine = Machine()
    kernel = machine.kernel
    root = kernel.spawn("root")
    region = 64 * PAGE_SIZE
    addr = root.vmspace.mmap(region, name="heap")
    procs = [root]
    models = [bytearray(region)]
    current = 0
    for op, arg, payload in ops:
        if op == "write":
            offset = arg * 100
            if offset + len(payload) > region:
                continue
            procs[current].vmspace.write(addr + offset, payload)
            models[current][offset:offset + len(payload)] = payload
        elif op == "fork" and len(procs) < 4:
            child = kernel.fork(procs[current])
            procs.append(child)
            models.append(bytearray(models[current]))
        elif op == "switch":
            current = arg % len(procs)
    for proc, model in zip(procs, models):
        for offset in range(0, region, 16 * PAGE_SIZE):
            got = proc.vmspace.read(addr + offset, 64)
            assert got == bytes(model[offset:offset + 64])


# -- checkpoint / crash / restore round trip -----------------------------------------


ckpt_writes = st.lists(
    st.tuples(st.integers(0, 31), st.binary(min_size=1, max_size=64)),
    min_size=1, max_size=16)


@settings(max_examples=25, deadline=None)
@given(st.lists(ckpt_writes, min_size=1, max_size=4),
       st.integers(0, 3))
def test_restore_reproduces_any_checkpoint(rounds, target_index):
    """Write in rounds with a checkpoint after each; crash; restoring
    round k reproduces exactly the memory as of round k."""
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    region = 32 * PAGE_SIZE
    addr = proc.vmspace.mmap(region, name="heap")
    group = sls.attach(proc, periodic=False)

    model = bytearray(region)
    snapshots = []
    ckpt_ids = []
    for writes in rounds:
        for slot, payload in writes:
            offset = slot * 128
            if offset + len(payload) > region:
                continue
            proc.vmspace.write(addr + offset, payload)
            model[offset:offset + len(payload)] = payload
        res = sls.checkpoint(group, sync=True)
        snapshots.append(bytes(model))
        ckpt_ids.append(res.info.ckpt_id)

    target = min(target_index, len(ckpt_ids) - 1)
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid, ckpt_id=ckpt_ids[target], periodic=False)
    got = result.root.vmspace.read(addr, region)
    assert got == snapshots[target]


# -- store merged views vs flat model ----------------------------------------------------


page_rounds = st.lists(
    st.dictionaries(st.integers(0, 15), st.integers(1, 10_000),
                    min_size=1, max_size=8),
    min_size=1, max_size=6)


@settings(max_examples=40, deadline=None)
@given(page_rounds, st.data())
def test_merged_views_equal_flat_model_even_after_gc(rounds, data):
    """Every checkpoint's merged view equals the flat model of writes
    up to it; deleting history from the old end never changes the
    views of the survivors."""
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    model = {}
    snapshots = []
    infos = []
    parent = None
    for round_pages in rounds:
        txn = store.begin_checkpoint(group_id=5, parent=parent)
        txn.put_pages(MEM_OID, {pindex: Page(seed=seed)
                                for pindex, seed in round_pages.items()})
        info = store.commit(txn, sync=True)
        model.update(round_pages)
        snapshots.append(dict(model))
        infos.append(info)
        parent = info.ckpt_id

    def check(index):
        _records, pages = store.merged_view(infos[index].ckpt_id)
        got = {pindex: store.fetch_page(loc).seed
               for pindex, loc in pages.get(MEM_OID, {}).items()}
        assert got == snapshots[index]

    for index in range(len(infos)):
        check(index)

    # GC a random prefix and re-check every survivor.
    ndelete = data.draw(st.integers(0, len(infos) - 1))
    for index in range(ndelete):
        store.delete_checkpoint(infos[index].ckpt_id)
    for index in range(ndelete, len(infos)):
        check(index)


# -- journal model ---------------------------------------------------------------------------


journal_ops = st.lists(
    st.one_of(st.binary(min_size=1, max_size=6000),
              st.just("truncate")),
    min_size=1, max_size=12)


@settings(max_examples=40, deadline=None)
@given(journal_ops)
def test_journal_replay_matches_model(ops):
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    journal = store.journal_create(4 * MiB)
    model = []
    for op in ops:
        if op == "truncate":
            journal.truncate()
            model = []
        else:
            journal.append(op)
            model.append(op)
    jid = journal.jid
    machine.crash()
    machine.boot()
    store2 = ObjectStore(machine)
    assert store2.mount()
    assert store2.journal(jid).replay() == model


# -- extent allocator ----------------------------------------------------------------------------


alloc_ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 512 * 1024)),
        st.tuples(st.just("free"), st.integers(0, 10 ** 6)),
    ),
    min_size=1, max_size=60)


@settings(max_examples=80, deadline=None)
@given(alloc_ops)
def test_allocator_never_overlaps_live_extents(ops):
    alloc = ExtentAllocator(1 * GiB)
    live = {}  # offset -> aligned length
    for op, arg in ops:
        if op == "alloc":
            offset = alloc.alloc(arg)
            length = (arg + 4 * KiB - 1) // (4 * KiB) * (4 * KiB)
            for other_off, other_len in live.items():
                assert offset + length <= other_off \
                    or other_off + other_len <= offset, \
                    "allocator handed out an overlapping extent"
            live[offset] = length
        elif live:
            victim = sorted(live)[arg % len(live)]
            alloc.free(victim, live.pop(victim))


# -- PID reservation under churn -----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 2), min_size=1, max_size=40))
def test_pid_allocator_unique_under_churn(ops):
    from repro.kernel.proc.pid import PIDAllocator
    alloc = PIDAllocator(first=10, limit=60)
    live = set()
    for op in ops:
        if op == 0 or not live:
            if len(live) >= 45:
                continue
            pid = alloc.allocate()
            assert pid not in live
            live.add(pid)
        elif op == 1:
            victim = next(iter(live))
            live.discard(victim)
            alloc.release(victim)
        else:
            # Reservation of an arbitrary id either fails (in use) or
            # yields a unique id.
            target = 10 + (len(live) * 7) % 50
            if alloc.reserve(target):
                assert target not in live
                live.add(target)
