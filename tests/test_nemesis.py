"""Partition tolerance: nemesis campaigns, epoch fencing, leases,
anti-entropy reconciliation, and seeded-partition reproducibility.

The heavyweight invariants live in the campaign engine
(:mod:`repro.core.nemesis`, re-exported by :mod:`tests.nemesis`): no
quorum-acked checkpoint is ever lost, no fenced (minority-side)
checkpoint is ever readable.  This file pins campaign seeds, checks
the fencing/lease/forced-promote unit behavior directly, verifies
:meth:`FaultPlan.random` partition schedules reproduce exactly, and
property-tests that *any* healing partition schedule converges every
node onto the oracle's last quorum-acked checkpoint.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import SLSCluster
from repro.core.faults import (ASYM_PARTITION, PARTIAL_PARTITION,
                               PARTITION, PRIMARY, FaultPlan)
from repro.core.segments import DigestTree
from repro.errors import LeaseValid, LinkDown, StaleReplica
from tests.nemesis import CAMPAIGNS, NemesisFixture, run_all, \
    run_campaign

# -- campaigns (the hard invariants) ----------------------------------------


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_campaign_invariants_hold(name):
    """Every campaign passes both invariants at a pinned seed."""
    result = run_campaign(name, seed=7)
    assert result.passed, result.violations


def test_campaigns_hold_across_seeds():
    """A second seed sweep: same invariants, different schedules."""
    for seed in (3, 42):
        for result in run_all(seed):
            assert result.passed, (seed, result.name,
                                   result.violations)


# -- fencing / lease / forced promote unit behavior -------------------------


def test_lease_refuses_failover_while_incumbent_healthy():
    fx = NemesisFixture(seed=1)
    v1, _ = fx.commit("v1")
    assert fx.cluster.pump() == v1  # pump renews the lease
    with pytest.raises(LeaseValid):
        fx.cluster.failover()
    # force overrides (operator knows better than the lease).
    fx.cluster.failover(force=True)


def test_fenced_primary_drains_and_reconcile_truncates():
    fx = NemesisFixture(seed=2)
    v1, _ = fx.commit("v1")
    assert fx.cluster.pump() == v1
    fx.plan.asym_partition(list(range(6)), [PRIMARY])
    v2, _ = fx.commit("v2")
    assert fx.cluster.pump() == v1
    fx.machine.clock.advance(2 * fx.cluster.lease_ns)
    fx.cluster.pump()
    fx.cluster.failover()  # bumps the epoch on a quorum of stores
    assert all(node.promised_epoch == 2 for node in fx.cluster.nodes)
    fx.cluster.pump()  # the displaced primary's next ship is fenced
    assert fx.cluster.stats["fenced_writes"] >= 1
    assert fx.cluster.fenced
    # Fenced: the pump is inert from here on.
    assert fx.cluster.pump() == v1
    fx.plan.heal()
    report = fx.cluster.reconcile()
    assert report["fenced"] > 0
    for node in fx.cluster.nodes:
        assert v2 not in node.applied


def test_force_alone_never_discards_acknowledged_state():
    fx = NemesisFixture(seed=3)
    v1, _ = fx.commit("v1")
    assert fx.cluster.pump() == v1
    fx.cluster.node_down(0)
    v2, _ = fx.commit("v2")
    assert fx.cluster.pump() == v2
    fx.cluster.node_up(0)  # rejoins holding only v1
    with pytest.raises(StaleReplica):
        fx.cluster.promote(0)
    with pytest.raises(StaleReplica, match="force_data_loss"):
        fx.cluster.promote(0, force=True)
    fx.cluster.promote(0, force=True, force_data_loss=True)
    assert fx.cluster.stats["forced_promotes"] == 1
    assert fx.cluster.durable == v1


def test_epoch_promise_and_attribution_survive_node_reboot():
    fx = NemesisFixture(seed=4)
    v1, _ = fx.commit("v1")
    assert fx.cluster.pump() == v1
    node = fx.cluster.nodes[2]
    node.sls.store.promise_cluster_epoch(5)
    before = dict(node.applied_epoch)
    fx.cluster.node_down(2)
    fx.cluster.node_up(2)
    node = fx.cluster.nodes[2]
    assert node.promised_epoch == 5  # rode the superblock
    assert node.applied_epoch == before  # rode the checkpoint names


def test_stall_reason_names_the_gap():
    fx = NemesisFixture(seed=5)
    v1, _ = fx.commit("v1")
    assert fx.cluster.pump() == v1
    assert fx.cluster.stall_reason() is None
    fx.plan.partition([PRIMARY], [1, 2, 3, 4, 5])
    fx.commit("v2")
    fx.cluster.pump()
    reason = fx.cluster.stall_reason()
    assert reason is not None
    assert f"/{fx.cluster.write_quorum}" in reason


# -- seeded partition schedules reproduce exactly ---------------------------


def test_random_partition_plans_reproduce():
    """Same seed → identical cut schedule, delays, and description."""
    kinds_seen = set()
    for seed in range(40):
        one = FaultPlan.random(seed, io_count=50, nodes=6)
        two = FaultPlan.random(seed, io_count=50, nodes=6)
        assert one.describe() == two.describe()
        assert one.cut_schedule() == two.cut_schedule()
        for kind, _at, _pairs in one.cut_schedule():
            kinds_seen.add(kind)
    assert kinds_seen == {PARTITION, ASYM_PARTITION, PARTIAL_PARTITION}


def test_random_without_nodes_never_draws_partitions():
    """The legacy (nodeless) schedule space is untouched."""
    for seed in range(20):
        plan = FaultPlan.random(seed, io_count=50)
        assert not plan.cut_schedule()
        assert plan.describe() == FaultPlan.random(
            seed, io_count=50).describe()


def test_delivery_hook_drops_cut_directions_only():
    plan = FaultPlan(name="unit")
    plan.asym_partition([0], [1])
    with pytest.raises(LinkDown):
        plan.on_deliver(0, 1)
    assert plan.on_deliver(1, 0) == 0  # reverse stays up
    plan.delay_link(1, 0, 123)
    assert plan.on_deliver(1, 0) == 123
    plan.heal()
    assert plan.on_deliver(0, 1) == 0


# -- property: any healing partition schedule converges ---------------------

ENDPOINTS = [PRIMARY, 0, 1, 2, 3]

directed_pairs = st.sets(
    st.tuples(st.sampled_from(ENDPOINTS),
              st.sampled_from(ENDPOINTS)).filter(lambda p: p[0] != p[1]),
    min_size=1, max_size=8)


def _check_heal_converges(pairs, seed):
    fx = NemesisFixture(seed=seed)
    v1, _ = fx.commit("v1")
    assert fx.cluster.pump() == v1
    fx.plan.partial_partition(sorted(pairs))
    v2, state2 = fx.commit("v2")
    stalled = fx.cluster.pump()
    assert stalled in (v1, v2)  # never beyond the chain, never lost
    fx.plan.heal()
    assert fx.cluster.pump() == v2
    # Every node's digest tree agrees after the heal.
    roots = set()
    for node in fx.cluster.nodes:
        manifests = fx.cluster._node_manifests(node)
        roots.add(DigestTree(fx.cluster.layout, manifests).root)
    assert len(roots) == 1
    fx.machine.crash()
    recovery = fx.cluster.recover()
    assert recovery.durable == v2
    assert fx.read(recovery.result.root) == state2


@settings(max_examples=10, deadline=None)
@given(pairs=directed_pairs, seed=st.integers(0, 2 ** 16))
def test_any_healing_partition_schedule_converges(pairs, seed):
    """Cut any directed link set among primary + 4 nodes: after the
    heal, every node converges on the last quorum-acked checkpoint
    and recovery restores it byte-identically."""
    _check_heal_converges(pairs, seed)


@pytest.mark.slow
@settings(max_examples=100, deadline=None)
@given(pairs=directed_pairs, seed=st.integers(0, 2 ** 16))
def test_any_healing_partition_schedule_converges_deep(pairs, seed):
    _check_heal_converges(pairs, seed)
