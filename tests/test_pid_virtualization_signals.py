"""Signal routing through virtualized PIDs after restore (§5.3).

"PIDs are used to route signals to processes, e.g., from a parent to
a child.  Not restoring the PID would lead to a failure to deliver
the signal."  These tests force PID conflicts at restore time and
verify that applications signalling by their checkpoint-time IDs
still reach the right processes.
"""

import pytest

from repro import Machine, load_aurora
from repro.errors import NoSuchProcess
from repro.kernel.proc.signals import SIGTERM, SIGUSR1
from repro.units import PAGE_SIZE


def _restore_with_conflicts(machine, sls, group, squat_pids):
    gid = group.group_id
    sls.checkpoint(group, sync=True)
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    for pid in squat_pids:
        machine.kernel.spawn(f"squatter{pid}", pid=pid)
    return sls2, sls2.restore(gid, periodic=False)


def test_kill_by_checkpoint_time_pid_after_conflict():
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel
    parent = kernel.spawn("parent")
    group = sls.attach(parent, periodic=False)
    child = kernel.fork(parent, name="child")
    child_local_pid = child.pid

    sls2, result = _restore_with_conflicts(machine, sls, group,
                                           squat_pids=[child_local_pid])
    by_name = {p.name: p for p in result.processes}
    parent2, child2 = by_name["parent"], by_name["child"]
    assert child2.pid != child_local_pid          # conflict: remapped
    assert child2.local_pid == child_local_pid    # app-visible id kept

    # The parent signals its child by the pid it has always known.
    machine.kernel.kill(parent2, child_local_pid, SIGUSR1)
    assert SIGUSR1 in child2.main_thread.signals.pending
    # The squatter did NOT receive it.
    squatter = machine.kernel.process(child_local_pid)
    assert SIGUSR1 not in squatter.main_thread.signals.pending


def test_kill_without_group_uses_global_pids():
    machine = Machine()
    kernel = machine.kernel
    a = kernel.spawn("a")
    b = kernel.spawn("b")
    kernel.kill(a, b.pid, SIGTERM)
    assert SIGTERM in b.main_thread.signals.pending


def test_kill_process_group_by_local_pgid():
    machine = Machine()
    kernel = machine.kernel
    leader = kernel.spawn("leader")
    member = kernel.fork(leader)
    kernel.kill(leader, -leader.pgroup.pgid, SIGUSR1)
    assert SIGUSR1 in leader.main_thread.signals.pending
    assert SIGUSR1 in member.main_thread.signals.pending


def test_waitpid_with_virtualized_pid():
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel
    parent = kernel.spawn("parent")
    group = sls.attach(parent, periodic=False)
    child = kernel.fork(parent, name="worker")
    child_local = child.pid

    sls2, result = _restore_with_conflicts(machine, sls, group,
                                           squat_pids=[child_local])
    by_name = {p.name: p for p in result.processes}
    parent2, child2 = by_name["parent"], by_name["worker"]
    child2.exit(7)
    local_pid, status = machine.kernel.waitpid(parent2, child_local)
    assert local_pid == child_local
    assert status == 7


def test_waitpid_no_zombie_raises():
    machine = Machine()
    kernel = machine.kernel
    parent = kernel.spawn("p")
    kernel.fork(parent)  # still running
    with pytest.raises(NoSuchProcess):
        kernel.waitpid(parent, 99999)


def test_restored_tree_signals_flow_parent_to_grandchild():
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel
    root = kernel.spawn("root-proc")
    group = sls.attach(root, periodic=False)
    mid = kernel.fork(root, name="mid")
    leaf = kernel.fork(mid, name="leaf")
    leaf_local = leaf.pid

    sls2, result = _restore_with_conflicts(machine, sls, group,
                                           squat_pids=[leaf_local])
    by_name = {p.name: p for p in result.processes}
    machine.kernel.kill(by_name["mid"], leaf_local, SIGTERM)
    assert SIGTERM in by_name["leaf"].main_thread.signals.pending
