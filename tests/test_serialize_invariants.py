"""Serialization invariants of the POSIX object model (§5.2).

"This structure allows Aurora to scan over all persistent objects and
serialize each of them to storage exactly once."  These tests verify
the exactly-once property directly, plus OID stability across
checkpoints and AIO capture/reissue.
"""

import pytest

from repro import Machine, load_aurora
from repro.core.serialize import CheckpointSerializer
from repro.kernel.aio import AIO_READ, AIO_WRITE
from repro.kernel.fs.file import O_CREAT, O_RDWR
from repro.units import PAGE_SIZE


class _CountingTxn:
    def __init__(self):
        self.put_counts = {}

    def put_object(self, oid, otype, state):
        self.put_counts[oid] = self.put_counts.get(oid, 0) + 1

    def put_pages(self, oid, pages):
        pass


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    group = sls.attach(proc, periodic=False)
    return machine, sls, proc, group


def _serialize(machine, sls, group):
    txn = _CountingTxn()
    serializer = CheckpointSerializer(machine.kernel, group, sls.store,
                                      txn)
    serializer.serialize_all()
    return txn


def test_shared_objects_serialized_exactly_once(setup):
    """One OpenFile in three fd-table slots across two processes, one
    vnode under two OpenFiles, one pipe under two fds: every object
    appears exactly once in the checkpoint."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    fd = kernel.open(proc, "/shared", O_CREAT | O_RDWR)
    kernel.dup(proc, fd)                       # same OpenFile, 2 slots
    kernel.open(proc, "/shared", O_RDWR)       # same vnode, new file
    kernel.pipe(proc)                          # one pipe, 2 fds
    kernel.fork(proc)                          # everything shared again

    txn = _serialize(machine, sls, group)
    duplicates = {oid: count for oid, count in txn.put_counts.items()
                  if count > 1}
    assert duplicates == {}


def test_oids_stable_across_checkpoints(setup):
    """The kernel-address -> OID map is persistent: the same objects
    get the same identities in every checkpoint (that is what makes
    incremental deltas meaningful)."""
    machine, sls, proc, group = setup
    kernel = machine.kernel
    kernel.open(proc, "/f", O_CREAT | O_RDWR)
    kernel.pipe(proc)
    first = set(_serialize(machine, sls, group).put_counts)
    second = set(_serialize(machine, sls, group).put_counts)
    assert first == second


def test_new_objects_get_new_oids(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    first = set(_serialize(machine, sls, group).put_counts)
    kernel.open(proc, "/late", O_CREAT)
    second = set(_serialize(machine, sls, group).put_counts)
    assert first < second


def test_inflight_aio_captured_and_reads_reissued(setup):
    machine, sls, proc, group = setup
    kernel = machine.kernel
    kernel.aio.submit(AIO_READ, None, 4096, 8192,
                      duration_ns=10 ** 12)  # won't complete in time
    res = sls.checkpoint(group, sync=True)
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    sls2.restore(gid)
    # The pending read was reissued on the new kernel.
    assert len(machine.kernel.aio.inflight) == 1
    request = next(iter(machine.kernel.aio.inflight.values()))
    assert request.offset == 4096 and request.length == 8192


def test_history_listing(setup):
    machine, sls, proc, group = setup
    sls.checkpoint(group, name="alpha", sync=True)
    sls.checkpoint(group, name="beta", sync=True)
    rows = sls.history(group.group_id)
    assert [row["name"] for row in rows] == ["alpha", "beta"]
    assert rows[0]["ckpt_id"] < rows[1]["ckpt_id"]
