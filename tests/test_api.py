"""The Aurora application API (Table 3): sls_* calls."""

import pytest

from repro import Machine, load_aurora
from repro.core.api import AuroraAPI
from repro.errors import InvalidArgument, NotAttached
from repro.units import KiB, MiB, MSEC, PAGE_SIZE, USEC


@pytest.fixture
def setup():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("custom-app")
    group = sls.attach(proc, periodic=False)
    api = AuroraAPI(sls, proc)
    return machine, sls, proc, group, api


def test_api_requires_attachment():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("loose")
    api = AuroraAPI(sls, proc)
    with pytest.raises(NotAttached):
        api.sls_checkpoint()


def test_manual_checkpoint_and_barrier(setup):
    machine, sls, proc, group, api = setup
    addr = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"api data")
    res = api.sls_checkpoint()
    assert res.info is not None
    ckpt_id = api.sls_barrier()
    assert ckpt_id == res.info.ckpt_id
    assert sls.store.get_checkpoint(ckpt_id).complete


def test_sls_restore_rolls_back(setup):
    machine, sls, proc, group, api = setup
    addr = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"good state")
    api.sls_checkpoint(sync=True)
    proc.vmspace.write(addr, b"bad state!")
    result = api.sls_restore()
    assert result.root.vmspace.read(addr, 10) == b"good state"
    assert proc.state == "zombie"  # old incarnation torn down


def test_memckpt_checkpoints_one_region(setup):
    machine, sls, proc, group, api = setup
    heap = proc.vmspace.mmap(64 * PAGE_SIZE, name="heap")
    scratch = proc.vmspace.mmap(64 * PAGE_SIZE, name="scratch")
    proc.vmspace.write(heap, b"persisted")
    proc.vmspace.write(scratch, b"ignored")
    api.sls_checkpoint(sync=True)  # baseline full checkpoint
    proc.vmspace.write(heap, b"PERSISTED-v2")
    proc.vmspace.write(scratch, b"SCRATCH-v2")
    res = api.sls_memckpt(heap, 64 * PAGE_SIZE, sync=True)
    assert res.info.partial
    gid = group.group_id

    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    # The memckpt region is current; the other region is at the full
    # checkpoint's state (composition, §7).
    assert result.root.vmspace.read(heap, 12) == b"PERSISTED-v2"
    assert result.root.vmspace.read(scratch, 7) == b"ignored"


def test_memckpt_has_lower_stop_time_than_full(setup):
    machine, sls, proc, group, api = setup
    heap = proc.vmspace.mmap(256 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(heap, 256, seed=0)
    full = api.sls_checkpoint(sync=True)
    proc.vmspace.touch(heap, 256, seed=1)
    full2 = api.sls_checkpoint(sync=True)
    proc.vmspace.touch(heap, 256, seed=2)
    atomic = api.sls_memckpt(heap, 256 * PAGE_SIZE, sync=True)
    assert atomic.stop_ns < full2.stop_ns


def test_journal_round_trip(setup):
    machine, sls, proc, group, api = setup
    journal = api.sls_journal_open(1 * MiB)
    api.sls_journal(journal, b"op-1")
    api.sls_journal(journal, b"op-2")
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    assert sls2.store.journal(journal.jid).replay() == [b"op-1", b"op-2"]


def test_journal_truncate_on_checkpoint_pattern(setup):
    """The RocksDB pattern: WAL fills -> checkpoint -> truncate WAL."""
    machine, sls, proc, group, api = setup
    journal = api.sls_journal_open(1 * MiB)
    api.sls_journal(journal, b"pre-ckpt")
    api.sls_checkpoint(sync=True)
    api.sls_journal_truncate(journal)
    api.sls_journal(journal, b"post-ckpt")
    assert journal.replay() == [b"post-ckpt"]


def test_mctl_excludes_region_from_checkpoints(setup):
    machine, sls, proc, group, api = setup
    heap = proc.vmspace.mmap(8 * PAGE_SIZE, name="heap")
    cache = proc.vmspace.mmap(1024 * PAGE_SIZE, name="cache")
    proc.vmspace.fill(cache, 1024, seed=0)
    proc.vmspace.write(heap, b"kept")
    assert api.sls_mctl(cache, 1024 * PAGE_SIZE, exclude=True) == 1
    res = api.sls_checkpoint(sync=True)
    assert res.pages_flushed < 1024  # the cache pages stayed home


def test_mctl_reinclude(setup):
    machine, sls, proc, group, api = setup
    region = proc.vmspace.mmap(4 * PAGE_SIZE, name="r")
    api.sls_mctl(region, 4 * PAGE_SIZE, exclude=True)
    api.sls_mctl(region, 4 * PAGE_SIZE, exclude=False)
    assert not proc.vmspace.entry_at(region).sls_excluded


def test_mctl_rejects_unmapped_range(setup):
    machine, sls, proc, group, api = setup
    with pytest.raises(InvalidArgument):
        api.sls_mctl(0xDEAD0000, PAGE_SIZE)


def test_fdctl_suppresses_external_synchrony(setup):
    machine, sls, proc, group, api = setup
    fd = machine.kernel.tcp_socket(proc)
    api.sls_fdctl(fd, nosync=True)
    assert proc.fdtable.get(fd).sls_nosync
    api.sls_fdctl(fd, nosync=False)
    assert not proc.fdtable.get(fd).sls_nosync


def test_journal_latency_below_checkpoint_latency(setup):
    """§7: the journal is the lowest-latency persistence primitive."""
    machine, sls, proc, group, api = setup
    heap = proc.vmspace.mmap(4 * PAGE_SIZE, name="heap")
    proc.vmspace.write(heap, b"x")
    journal = api.sls_journal_open(1 * MiB)
    t0 = machine.clock.now()
    api.sls_journal(journal, b"y" * 4096)
    journal_time = machine.clock.now() - t0
    t0 = machine.clock.now()
    api.sls_checkpoint(sync=True)
    ckpt_time = machine.clock.now() - t0
    assert journal_time < ckpt_time
