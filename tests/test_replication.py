"""Continuous replication and failover (Table 2's HA mode)."""

import pytest

from repro import Machine, load_aurora
from repro.core.replication import ReplicationLink
from repro.errors import SLSError
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture
def pair():
    primary = Machine()
    primary_sls = load_aurora(primary)
    standby = Machine()
    standby_sls = load_aurora(standby)
    return primary, primary_sls, standby, standby_sls


def make_service(machine, sls, periodic=False):
    proc = machine.kernel.spawn("svc")
    addr = proc.vmspace.mmap(32 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, name="svc", periodic=periodic)
    return proc, group, addr


def test_manual_ship_and_failover(pair):
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = make_service(primary, primary_sls)
    link = ReplicationLink(primary_sls, standby_sls, group)

    proc.vmspace.write(addr, b"state-1")
    primary_sls.checkpoint(group, sync=True)
    assert link.ship() == group.last_complete_id
    assert link.ship() is None  # nothing new

    primary.crash()
    result = link.failover()
    assert result.root.vmspace.read(addr, 7) == b"state-1"


def test_incremental_streams_shrink(pair):
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = make_service(primary, primary_sls)
    link = ReplicationLink(primary_sls, standby_sls, group)
    for page in range(32):
        proc.vmspace.write(addr + page * PAGE_SIZE,
                           bytes([page]) * PAGE_SIZE)
    primary_sls.checkpoint(group, sync=True)
    link.ship()
    first_bytes = link.stats["bytes"]

    proc.vmspace.write(addr, b"one dirty page")
    primary_sls.checkpoint(group, sync=True)
    link.ship()
    delta_bytes = link.stats["bytes"] - first_bytes
    assert delta_bytes < first_bytes / 2
    assert link.stats["full_syncs"] == 1


def test_installed_link_pumps_automatically(pair):
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = make_service(primary, primary_sls,
                                     periodic=True)
    link = ReplicationLink(primary_sls, standby_sls, group)
    link.install()
    for tick in range(20):
        proc.vmspace.write(addr, f"tick-{tick:03d}".encode())
        primary.run_for(5 * MSEC)
    assert link.stats["streams"] >= 5
    assert link.lag_checkpoints() <= 1

    primary.crash()
    result = link.failover()
    value = result.root.vmspace.read(addr, 8).decode()
    assert value.startswith("tick-")
    assert int(value.split("-")[1]) >= 15  # bounded loss


def test_failover_without_replication_fails(pair):
    primary, primary_sls, standby, standby_sls = pair
    _proc, group, _addr = make_service(primary, primary_sls)
    link = ReplicationLink(primary_sls, standby_sls, group)
    with pytest.raises(SLSError):
        link.failover()


def test_stop_halts_pumping(pair):
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = make_service(primary, primary_sls,
                                     periodic=True)
    link = ReplicationLink(primary_sls, standby_sls, group)
    link.install()
    primary.run_for(30 * MSEC)
    link.stop()
    shipped = link.stats["streams"]
    primary.run_for(50 * MSEC)
    assert link.stats["streams"] == shipped
