"""Continuous replication and failover (Table 2's HA mode)."""

import pytest

from repro import Machine, load_aurora
from repro.core.faults import FaultPlan
from repro.core.replication import ReplicationLink
from repro.errors import SLSError
from repro.units import MSEC, PAGE_SIZE


@pytest.fixture
def pair():
    primary = Machine()
    primary_sls = load_aurora(primary)
    standby = Machine()
    standby_sls = load_aurora(standby)
    return primary, primary_sls, standby, standby_sls


def make_service(machine, sls, periodic=False):
    proc = machine.kernel.spawn("svc")
    addr = proc.vmspace.mmap(32 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, name="svc", periodic=periodic)
    return proc, group, addr


def test_manual_ship_and_failover(pair):
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = make_service(primary, primary_sls)
    link = ReplicationLink(primary_sls, standby_sls, group)

    proc.vmspace.write(addr, b"state-1")
    primary_sls.checkpoint(group, sync=True)
    assert link.ship() == group.last_complete_id
    assert link.ship() is None  # nothing new

    primary.crash()
    result = link.failover()
    assert result.root.vmspace.read(addr, 7) == b"state-1"


def test_incremental_streams_shrink(pair):
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = make_service(primary, primary_sls)
    link = ReplicationLink(primary_sls, standby_sls, group)
    for page in range(32):
        proc.vmspace.write(addr + page * PAGE_SIZE,
                           bytes([page]) * PAGE_SIZE)
    primary_sls.checkpoint(group, sync=True)
    link.ship()
    first_bytes = link.stats["bytes"]

    proc.vmspace.write(addr, b"one dirty page")
    primary_sls.checkpoint(group, sync=True)
    link.ship()
    delta_bytes = link.stats["bytes"] - first_bytes
    assert delta_bytes < first_bytes / 2
    assert link.stats["full_syncs"] == 1


def test_installed_link_pumps_automatically(pair):
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = make_service(primary, primary_sls,
                                     periodic=True)
    link = ReplicationLink(primary_sls, standby_sls, group)
    link.install()
    for tick in range(20):
        proc.vmspace.write(addr, f"tick-{tick:03d}".encode())
        primary.run_for(5 * MSEC)
    assert link.stats["streams"] >= 5
    assert link.lag_checkpoints() <= 1

    primary.crash()
    result = link.failover()
    value = result.root.vmspace.read(addr, 8).decode()
    assert value.startswith("tick-")
    assert int(value.split("-")[1]) >= 15  # bounded loss


def test_failover_without_replication_fails(pair):
    primary, primary_sls, standby, standby_sls = pair
    _proc, group, _addr = make_service(primary, primary_sls)
    link = ReplicationLink(primary_sls, standby_sls, group)
    with pytest.raises(SLSError):
        link.failover()


def test_stale_outage_does_not_permit_premature_failover(pair):
    """Regression: a healed link must not inherit a stale outage.

    An outage recorded when a ship's retries exhaust was never
    re-examined unless a later ship happened to succeed, so once the
    outage *start* aged past the failover deadline, ``failover()``
    would promote the standby while the primary was alive and the
    link fine — losing the tail the standby never received.  The fix
    probes the link before trusting the recorded outage.
    """
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = make_service(primary, primary_sls)
    link = ReplicationLink(primary_sls, standby_sls, group)

    proc.vmspace.write(addr, b"state-A")
    primary_sls.checkpoint(group, sync=True)
    assert link.ship() is not None

    # The tail checkpoint B commits, but the link flaps through the
    # whole retry budget (5 attempts): the outage is recorded and B
    # stays unshipped.  Three more flaps remain armed.
    proc.vmspace.write(addr, b"state-B")
    primary_sls.checkpoint(group, sync=True)
    ckpt_b = group.last_complete_id
    primary.set_fault_plan(FaultPlan(name="flap").flaky_link(times=8))
    assert link.ship() is None
    assert link.down_since is not None
    assert link.last_shipped != ckpt_b

    # The link heals, but nothing ships again; the stale outage ages
    # past the failover deadline.
    primary_sls.machine.clock.advance(150 * MSEC)
    assert link.outage_ns() > link.failover_deadline_ns

    # Failover must probe instead of trusting the stale record: the
    # probe rides out the remaining flaps, ships B, and refuses the
    # promotion — the primary is alive and the standby now current.
    with pytest.raises(SLSError, match="refusing failover"):
        link.failover()
    assert link.down_since is None
    assert link.last_shipped == ckpt_b

    # When the primary really dies, failover proceeds and restores
    # the tail the probe saved.
    primary.crash()
    result = link.failover()
    assert result.root.vmspace.read(addr, 7) == b"state-B"


def test_stop_halts_pumping(pair):
    primary, primary_sls, standby, standby_sls = pair
    proc, group, addr = make_service(primary, primary_sls,
                                     periodic=True)
    link = ReplicationLink(primary_sls, standby_sls, group)
    link.install()
    primary.run_for(30 * MSEC)
    link.stop()
    shipped = link.stats["streams"]
    primary.run_for(50 * MSEC)
    assert link.stats["streams"] == shipped
