"""Failure injection: corrupted media, full devices, failed IO.

The single level store's value proposition is surviving ugly failure
modes; these tests inject them deliberately.
"""

import pytest

from repro import Machine, load_aurora
from repro.errors import CorruptRecord, NoSpace, StoreError, StoreFull
from repro.hw.memory import Page
from repro.kernel.aio import AIO_WRITE
from repro.objstore.oid import CLASS_MEMORY, make_oid
from repro.objstore.store import ObjectStore, SUPERBLOCK_SLOTS
from repro.units import GiB, KiB, MiB, PAGE_SIZE

MEM_OID = make_oid(CLASS_MEMORY, 99)


@pytest.fixture(params=["sync", "async"])
def commit_mode(request):
    """Every failure here must hold on both commit paths: the blocking
    sls_checkpoint+barrier one and the continuous (async) one."""
    return request.param


def _commit(machine, store, txn, mode):
    """Commit ``txn`` via the requested path, to durability."""
    if mode == "sync":
        return store.commit(txn, sync=True)
    info = store.commit(txn, sync=False)
    while not info.complete:
        deadline = store.pending_commit_deadline(info.group_id)
        assert deadline is not None, "async commit stalled incomplete"
        machine.loop.run_until(deadline)
        machine.storage.poll()
    return info


def _store_with_chain(machine, nckpts=3, mode="sync"):
    store = ObjectStore(machine)
    store.format()
    parent = None
    infos = []
    for index in range(nckpts):
        txn = store.begin_checkpoint(group_id=4, parent=parent)
        txn.put_pages(MEM_OID, {0: Page(seed=index)})
        info = _commit(machine, store, txn, mode)
        infos.append(info)
        parent = info.ckpt_id
    return store, infos


def _corrupt_extent(machine, offset):
    payload = machine.storage.read(offset)
    if isinstance(payload, bytes):
        flipped = bytes([payload[0] ^ 0xFF]) + payload[1:]
        machine.storage.discard_extent(offset)
        machine.storage.write(offset, flipped)


def test_corrupt_newest_superblock_falls_back(commit_mode):
    machine = Machine()
    store, infos = _store_with_chain(machine, mode=commit_mode)
    newest_slot = SUPERBLOCK_SLOTS[store._generation % 2]
    machine.crash()
    machine.boot()
    _corrupt_extent(machine, newest_slot)
    store2 = ObjectStore(machine)
    assert store2.mount()
    # One generation was lost, but the store is consistent: whatever
    # checkpoints the surviving generation references are readable.
    for info in store2.checkpoints.values():
        _records, pages = store2.merged_view(info.ckpt_id)
        store2.fetch_page(pages[MEM_OID][0])


def test_corrupt_catalog_falls_back_a_generation(commit_mode):
    machine = Machine()
    store, infos = _store_with_chain(machine, mode=commit_mode)
    catalog_offset = store._catalog_extent[0]
    machine.crash()
    machine.boot()
    _corrupt_extent(machine, catalog_offset)
    store2 = ObjectStore(machine)
    assert store2.mount()
    # The previous generation lacks the newest checkpoint but is sane.
    assert len(store2.checkpoints) >= 1


def test_both_superblocks_corrupt_reads_as_blank(commit_mode):
    """With no valid superblock at all the array is indistinguishable
    from unformatted: mount() reports that rather than guessing."""
    machine = Machine()
    store, _infos = _store_with_chain(machine, mode=commit_mode)
    machine.crash()
    machine.boot()
    for slot in SUPERBLOCK_SLOTS:
        _corrupt_extent(machine, slot)
    store2 = ObjectStore(machine)
    assert not store2.mount()


def test_torn_page_extent_detected_on_read(commit_mode):
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    txn = store.begin_checkpoint(group_id=4)
    txn.put_pages(MEM_OID, {0: Page(data=b"real bytes" * 40)})
    info = _commit(machine, store, txn, commit_mode)
    _records, pages = store.merged_view(info.ckpt_id)
    locator = pages[MEM_OID][0]
    # Corrupt the data extent, then try to read the page back.
    raw = machine.storage.read(locator.extent)
    machine.storage.discard_extent(locator.extent)
    machine.storage.write(locator.extent, b"\x00" * len(raw))
    page = store.fetch_page(locator)
    # Data extents are raw page payloads (checksums live on records);
    # the corruption surfaces as different content, which the crash
    # property tests bound to never happen for *committed* superblock
    # generations — here we simply observe the torn content.
    assert page.realize() != Page(data=b"real bytes" * 40).realize()


def test_store_full_surfaces_cleanly(commit_mode):
    """ENOSPC is raised at commit() on both paths: extents are
    allocated up front, before any write is queued."""
    machine = Machine(capacity_per_device=2 * MiB)
    store = ObjectStore(machine)
    store.format()
    txn = store.begin_checkpoint(group_id=4)
    txn.put_pages(MEM_OID, {i: Page(seed=i) for i in range(4096)})
    with pytest.raises(StoreFull):
        store.commit(txn, sync=(commit_mode == "sync"))


def test_checkpoint_on_full_store_does_not_corrupt_previous():
    machine = Machine(capacity_per_device=2 * MiB)
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(2048 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"safe state")
    group = sls.attach(proc, periodic=False)
    sls.checkpoint(group, sync=True)
    gid = group.group_id
    # Dirty far more than the remaining space and try to checkpoint:
    # 2044 pages of data alone exceed the array minus the reserved
    # superblock region, so the overflow does not depend on metadata
    # overhead (run-compressed metadata is tiny).
    proc.vmspace.fill(addr + 4 * PAGE_SIZE, 2044, seed=1)
    with pytest.raises(StoreFull):
        sls.checkpoint(group, sync=True)
    # The first checkpoint still restores after a crash.
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    assert result.root.vmspace.read(addr, 10) == b"safe state"


def test_failed_aio_lands_in_checkpoint_state():
    machine = Machine()
    kernel = machine.kernel
    request = kernel.aio.submit(AIO_WRITE, None, 4096, 8192)
    kernel.aio.fail(request, "ENOSPC")
    state = kernel.aio.quiesce()
    assert state["failed"][0]["error"] == "ENOSPC"


def test_journal_full_is_clean_and_journal_still_replays():
    machine = Machine()
    store = ObjectStore(machine)
    store.format()
    journal = store.journal_create(32 * KiB)
    written = []
    with pytest.raises(NoSpace):
        for index in range(100):
            payload = f"entry-{index}".encode()
            journal.append(payload)
            written.append(payload)
    assert journal.replay() == written


def test_crash_during_async_flush_preserves_prior_checkpoint():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(512 * PAGE_SIZE, name="heap")
    proc.vmspace.write(addr, b"v1")
    group = sls.attach(proc, periodic=False)
    sls.checkpoint(group, sync=True)
    gid = group.group_id
    proc.vmspace.fill(addr, 512, seed=9)
    proc.vmspace.write(addr, b"v2")
    sls.checkpoint(group)          # async; flush in flight
    machine.crash()                # tear it
    machine.boot()
    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    assert result.root.vmspace.read(addr, 2) == b"v1"
