"""The crash-schedule explorer harness.

The property under test is the paper's core promise (§5, §7): a crash
at *any* instant of a checkpoint leaves the application restorable to
its last durable checkpoint.  "Any instant" is made enumerable by the
:class:`~repro.core.faults.FaultPlan` layer: every device write has an
IO index and the checkpoint pipeline reports every stage boundary, so
the schedule space of one checkpoint is a finite, deterministic list
of crash points.

The explorer runs a fixed workload to a known durable state ``V1``,
dirties it to ``V2``, then takes the probed checkpoint:

* :meth:`CrashScheduleExplorer.probe` runs it twice under an observing
  plan and asserts the IO trace and stage boundaries are identical —
  the determinism every crash point depends on.  The probe also finds
  the *commit point*: the IO index of the superblock flip that makes
  ``V2`` durable.
* :meth:`CrashScheduleExplorer.run_point` reruns the workload from
  scratch, crashes at one schedule point, reboots, remounts and
  restores — asserting the restored bytes are exactly ``V2`` when the
  crash came after the commit point and exactly ``V1`` otherwise.
* :meth:`CrashScheduleExplorer.all_points` enumerates the complete
  schedule: every stage boundary plus every IO index.

Used by ``tests/test_crashsched.py`` (smoke subset in tier-1, the
exhaustive sweep under ``-m slow``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import Machine, load_aurora
from repro.core.cluster import (B_APPLY, B_EPOCH, B_LEASE, B_RECONCILE,
                                SLSCluster)
from repro.core.faults import (AFTER, BEFORE, PRIMARY, FaultPlan,
                               InjectedCrash)
from repro.objstore.store import SUPERBLOCK_SLOTS
from repro.units import PAGE_SIZE


class WorkloadRun:
    """One booted machine advanced to the pre-checkpoint state."""

    def __init__(self, machine, sls, group, proc, addr):
        self.machine = machine
        self.sls = sls
        self.group = group
        self.gid = group.group_id
        self.proc = proc
        self.addr = addr


class CounterAppWorkload:
    """Deterministic single-process app with two distinguishable states.

    ``V1`` is made durable by a sync checkpoint; the heap is then
    dirtied to ``V2`` and the *probed* checkpoint (the one the
    explorer crashes) tries to commit ``V2``.
    """

    V1 = b"aurora-crashsched-v1"
    V2 = b"aurora-crashsched-v2"
    NPAGES = 24

    def boot(self) -> WorkloadRun:
        machine = Machine()
        sls = load_aurora(machine)
        proc = machine.kernel.spawn("app")
        addr = proc.vmspace.mmap(self.NPAGES * PAGE_SIZE, name="heap")
        self._fill(proc, addr, self.V1)
        group = sls.attach(proc, periodic=False)
        sls.checkpoint(group, name="v1", sync=True)
        self._fill(proc, addr, self.V2)
        return WorkloadRun(machine, sls, group, proc, addr)

    def _fill(self, proc, addr: int, tag: bytes) -> None:
        """Dirty enough real pages that the flush packs more than one
        stripe-unit data extent (the IO schedule spans devices)."""
        proc.vmspace.write(addr, tag)
        for index in range(2, 20):
            proc.vmspace.write(addr + index * PAGE_SIZE,
                               tag + b":%d" % index)

    def checkpoint(self, run: WorkloadRun) -> None:
        run.sls.checkpoint(run.group, name="v2", sync=True)

    def read_state(self, proc, addr: int) -> bytes:
        return proc.vmspace.read(addr, len(self.V1))


class IncrementalCounterWorkload(CounterAppWorkload):
    """Crash scheduling across *incremental* kernel-state checkpoints.

    A base full checkpoint sets the group's epoch floor first, so the
    ``V1`` checkpoint and the probed ``V2`` checkpoint are both
    incremental deltas: most kernel-state records are skipped as
    clean and resolve through the parent chain at restore.  Crashing
    anywhere between (and inside) the two incremental checkpoints
    must restore exactly the last durable one — the delta commit
    path's version of the §5/§7 promise.
    """

    def boot(self) -> WorkloadRun:
        machine = Machine()
        sls = load_aurora(machine)
        kernel = machine.kernel
        proc = kernel.spawn("app")
        # Extra kernel state that stays clean across the probed
        # checkpoint, so the incremental walk has records to skip.
        kernel.pipe(proc)
        kernel.pipe(proc)
        addr = proc.vmspace.mmap(self.NPAGES * PAGE_SIZE, name="heap")
        self._fill(proc, addr, b"aurora-crashsched-v0")
        group = sls.attach(proc, periodic=False)
        sls.checkpoint(group, name="base", sync=True)
        self._fill(proc, addr, self.V1)
        result = sls.checkpoint(group, name="v1", sync=True)
        assert result.records_skipped > 0, \
            "v1 checkpoint was not incremental"
        self._fill(proc, addr, self.V2)
        return WorkloadRun(machine, sls, group, proc, addr)


class CrashPoint:
    """One enumerable crash instant of the probed checkpoint."""

    def arm(self, plan: FaultPlan) -> None:
        raise NotImplementedError

    #: True when V2 must be durable after a crash here (filled in by
    #: the oracle from the fired event's IO position).
    def __repr__(self) -> str:
        return f"<{self}>"


class IOCrash(CrashPoint):
    """Power fails the instant IO ``index`` would be issued."""

    def __init__(self, index: int):
        self.index = index

    def arm(self, plan: FaultPlan) -> None:
        plan.crash_at_io(self.index)

    def __str__(self) -> str:
        return f"io:{self.index}"


class StageCrash(CrashPoint):
    """Power fails at a pipeline stage boundary."""

    def __init__(self, stage: str, edge: str = BEFORE):
        self.stage = stage
        self.edge = edge

    def arm(self, plan: FaultPlan) -> None:
        plan.crash_at_stage(self.stage, self.edge)

    def __str__(self) -> str:
        return f"stage:{self.edge}-{self.stage}"


class Schedule:
    """The probed checkpoint's complete, deterministic schedule."""

    def __init__(self, io_log: List[int],
                 boundaries: List[Tuple[str, str]]):
        self.io_log = io_log
        self.io_count = len(io_log)
        self.boundaries = boundaries
        #: IO index of the superblock flip that makes V2 durable: the
        #: first write to a superblock slot during the probed
        #: checkpoint.  A crash strictly after it restores V2.
        self.flip_index = next(
            (i for i, off in enumerate(io_log)
             if off in SUPERBLOCK_SLOTS), None)

    def __repr__(self) -> str:
        return (f"Schedule({self.io_count} IOs, "
                f"{len(self.boundaries)} boundaries, "
                f"flip@{self.flip_index})")


class Outcome:
    """What one crash-schedule run observed."""

    def __init__(self, point: CrashPoint, fired: bool, submitted: int,
                 restored: bytes, expected: bytes):
        self.point = point
        self.fired = fired
        #: IOs fully submitted when the crash fired.
        self.submitted = submitted
        self.restored = restored
        self.expected = expected

    @property
    def ok(self) -> bool:
        return self.fired and self.restored == self.expected

    def __repr__(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        return f"Outcome({self.point}, {status})"


class CrashScheduleExplorer:
    """Enumerates and executes every crash point of one checkpoint."""

    def __init__(self, workload: Optional[CounterAppWorkload] = None):
        self.workload = workload or CounterAppWorkload()

    # -- schedule discovery -------------------------------------------------

    def _observe(self) -> FaultPlan:
        run = self.workload.boot()
        plan = FaultPlan(name="probe")
        run.machine.set_fault_plan(plan)
        self.workload.checkpoint(run)
        return plan

    def probe(self) -> Schedule:
        """Discover the schedule and assert it is deterministic."""
        first = self._observe()
        second = self._observe()
        assert first.io_log == second.io_log, \
            "probed checkpoint's IO trace is not deterministic"
        assert first.boundaries_seen == second.boundaries_seen, \
            "probed checkpoint's stage boundaries are not deterministic"
        schedule = Schedule(first.io_log, first.boundaries_seen)
        assert schedule.io_count > 0, "probed checkpoint issued no IO"
        assert schedule.flip_index is not None, \
            "probed checkpoint never flipped the superblock"
        return schedule

    def all_points(self, schedule: Schedule) -> List[CrashPoint]:
        """The complete schedule: every boundary, every IO index."""
        points: List[CrashPoint] = [StageCrash(stage, edge)
                                    for stage, edge in schedule.boundaries]
        points.extend(IOCrash(index)
                      for index in range(schedule.io_count))
        return points

    # -- executing one point ------------------------------------------------

    def run_point(self, point: CrashPoint, schedule: Schedule) -> Outcome:
        """Crash at ``point``, reboot, restore, check the oracle."""
        from repro.core import events

        workload = self.workload
        # Scope the (process-global) event ring to this run so the
        # snapshots it persists — and the recovered black box's
        # volatile tail — hold exactly this run's history.
        events.log().reset()
        run = workload.boot()
        plan = FaultPlan(name=str(point))
        point.arm(plan)
        run.machine.set_fault_plan(plan)
        fired = False
        try:
            workload.checkpoint(run)
        except InjectedCrash:
            fired = True
        assert plan.fired, f"{point}: scheduled crash never fired"
        fired = True
        submitted = plan.events[0].io_index
        # The oracle: V2 is durable iff the superblock flip write was
        # fully submitted before the power failed.
        expected = (workload.V2 if submitted > schedule.flip_index
                    else workload.V1)

        run.machine.crash()
        run.machine.boot()
        sls = load_aurora(run.machine)
        self._verify_blackbox(sls, point, expected)
        result = sls.restore(run.gid, periodic=False)
        restored = workload.read_state(result.root, run.addr)
        return Outcome(point, fired, submitted, restored, expected)

    def _verify_blackbox(self, sls, point: CrashPoint,
                         expected: bytes) -> None:
        """The recovered flight recorder must agree with the oracle:
        the persisted timeline ends at the checkpoint the durability
        oracle says survived, and the injected fault shows up in the
        merged (volatile-tail) timeline."""
        from repro.core import events, flightrec

        box = flightrec.blackbox(sls.store, volatile=events.log())
        assert box is not None, \
            f"{point}: no flight recorder snapshot recovered"
        last = box.last_durable
        assert last is not None, \
            f"{point}: recovered timeline has no durable commit"
        expected_name = ("v2" if expected == self.workload.V2 else "v1")
        assert last["fields"].get("name") == expected_name, \
            (f"{point}: black box ends at "
             f"{last['fields'].get('name')!r}, oracle says "
             f"{expected_name!r} is the last durable commit")
        # Nothing persisted may postdate the durable commit the
        # timeline ends at.
        assert box.events[-1] is last, \
            f"{point}: persisted events continue past the durable commit"
        faults = [row for row in box.timeline()
                  if row["kind"] == events.FAULT_INJECTED]
        assert faults, f"{point}: injected fault missing from black box"
        assert all(row.get("post_snapshot") for row in faults), \
            f"{point}: a crash fault event was persisted as durable"

    def sweep(self, points: List[CrashPoint],
              schedule: Schedule) -> List[Outcome]:
        """Run every point; returns the outcomes (callers assert)."""
        return [self.run_point(point, schedule) for point in points]


# -- the cluster crash-schedule explorer ------------------------------------


class ClusterRun:
    """One primary plus its quorum cluster, advanced to the
    pre-probed-checkpoint state."""

    def __init__(self, machine, sls, group, proc, addr, cluster,
                 v1_ckpt: int):
        self.machine = machine
        self.sls = sls
        self.group = group
        self.gid = group.group_id
        self.proc = proc
        self.addr = addr
        self.cluster = cluster
        self.v1_ckpt = v1_ckpt


class ClusterWorkload(CounterAppWorkload):
    """The quorum-replication protocol made crash-enumerable.

    Boot: a 6-node / 3-AZ cluster replicates a durable ``V1``
    checkpoint everywhere (no plan installed — those boundaries are
    not part of the probed schedule), then node 5 is powered off and
    the heap is dirtied to ``V2``.

    The probed action then crosses every replication boundary once:
    the ``V2`` sync checkpoint is pumped to the five reachable nodes
    (``ship``/``deliver``/``apply``/``ack`` per node), node 5 rejoins
    holding only ``V1``, and segment repair rebuilds its missing
    ``V2`` copy (one ``repair`` boundary per segment).

    The durability flip is the **write-quorum** apply — the
    :data:`WRITE_QUORUM`-th node's media commit — not any single
    node's, and not the primary's own superblock.
    """

    NODES = 6
    AZS = 3
    WRITE_QUORUM = 4
    SEGMENT_BYTES = 512
    REJOIN_NODE = 5

    def boot(self) -> ClusterRun:  # type: ignore[override]
        machine = Machine()
        sls = load_aurora(machine)
        proc = machine.kernel.spawn("app")
        addr = proc.vmspace.mmap(self.NPAGES * PAGE_SIZE, name="heap")
        self._fill(proc, addr, self.V1)
        group = sls.attach(proc, periodic=False)
        v1 = sls.checkpoint(group, name="v1", sync=True).info.ckpt_id
        cluster = SLSCluster(sls, group, nodes=self.NODES,
                             azs=self.AZS,
                             segment_bytes=self.SEGMENT_BYTES)
        durable = cluster.pump()
        assert durable == v1, "V1 did not reach quorum before the probe"
        cluster.node_down(self.REJOIN_NODE)
        self._fill(proc, addr, self.V2)
        return ClusterRun(machine, sls, group, proc, addr, cluster, v1)

    def action(self, run: ClusterRun) -> None:
        """The probed sequence: replicate V2, rejoin node 5, repair."""
        run.sls.checkpoint(run.group, name="v2", sync=True)
        run.cluster.pump()
        run.cluster.node_up(self.REJOIN_NODE)
        run.cluster.repair()

    def read_page(self, proc, addr: int, index: int) -> bytes:
        tag = self.read_state(proc, addr)
        return proc.vmspace.read(addr + index * PAGE_SIZE,
                                 len(tag) + len(b":%d" % index))


class ClusterSchedule:
    """The probed action's complete replication-boundary schedule."""

    def __init__(self, repl_log: List[Tuple[int, str]],
                 write_quorum: int):
        self.repl_log = repl_log
        self.count = len(repl_log)
        applies = [i for i, (_, boundary) in enumerate(repl_log)
                   if boundary == B_APPLY]
        #: Index of the write-quorum-th ``apply`` boundary: that
        #: boundary is logged *after* the W-th node's media commit, so
        #: a crash at it — or any later boundary — leaves V2 quorum-
        #: durable; a crash at any earlier boundary must recover V1.
        self.flip_index = (applies[write_quorum - 1]
                           if len(applies) >= write_quorum else None)

    def __repr__(self) -> str:
        return (f"ClusterSchedule({self.count} boundaries, "
                f"flip@{self.flip_index})")


class ClusterOutcome:
    """What one cluster crash-schedule run observed."""

    def __init__(self, index: int, boundary: Tuple[int, str], mode: str,
                 durable: int, restored: bytes, restored_page: bytes,
                 expected: bytes, expected_page: bytes):
        self.index = index
        self.boundary = boundary
        self.mode = mode
        self.durable = durable
        self.restored = restored
        self.restored_page = restored_page
        self.expected = expected
        self.expected_page = expected_page

    @property
    def ok(self) -> bool:
        return (self.restored == self.expected
                and self.restored_page == self.expected_page)

    def __repr__(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        node, boundary = self.boundary
        return (f"ClusterOutcome(#{self.index} {boundary}@n{node} "
                f"{self.mode}, {status})")


class ClusterScheduleExplorer:
    """Crashes the primary — or any single node — at every
    replication/quorum boundary and checks the quorum oracle.

    Two modes per boundary:

    * ``primary`` — the whole primary machine power-fails at the
      boundary; the cluster recovers from replica media alone.  The
      recovered state must be V2 iff the crash came at or after the
      write-quorum apply (``flip_index``), V1 otherwise — and never
      anything in between (a non-acked checkpoint is invisible, an
      acked one complete).
    * ``node`` — the *node named by the boundary* power-fails there
      instead.  The pump/repair absorb the loss (one node is not the
      availability unit), the action completes, and recovery after a
      subsequent primary crash must still produce V2: the quorum held.
    """

    def __init__(self, workload: Optional[ClusterWorkload] = None):
        self.workload = workload or ClusterWorkload()

    # -- schedule discovery -------------------------------------------------

    def _observe(self) -> FaultPlan:
        run = self.workload.boot()
        plan = FaultPlan(name="cluster-probe")
        run.machine.set_fault_plan(plan)
        self.workload.action(run)
        return plan

    def probe(self) -> ClusterSchedule:
        """Discover the boundary schedule; assert it is deterministic."""
        first = self._observe()
        second = self._observe()
        assert first.repl_log == second.repl_log, \
            "replication boundary schedule is not deterministic"
        schedule = ClusterSchedule(first.repl_log,
                                   self.workload.WRITE_QUORUM)
        assert schedule.count > 0, "action crossed no boundaries"
        assert schedule.flip_index is not None, \
            "V2 never reached a write quorum in the probe"
        assert any(boundary == "repair"
                   for _, boundary in schedule.repl_log), \
            "action scheduled no repair boundaries"
        return schedule

    # -- executing one point ------------------------------------------------

    def run_point(self, index: int, schedule: ClusterSchedule,
                  mode: str = "primary") -> ClusterOutcome:
        workload = self.workload
        run = workload.boot()
        plan = FaultPlan(name=f"repl{index}:{mode}")
        if mode == "primary":
            plan.crash_at_repl(index)
        else:
            plan.node_crash_at_repl(index)
        run.machine.set_fault_plan(plan)
        try:
            workload.action(run)
        except InjectedCrash:
            assert mode == "primary", \
                "a node crash must never escape the pump"
        assert plan.fired, f"boundary {index}: crash never fired"

        # Whatever already happened, the primary now dies; the cluster
        # must settle on its quorum-durable state from replica media.
        run.machine.crash()
        recovery = run.cluster.recover()
        if mode == "primary":
            expected = (workload.V2
                        if index >= (schedule.flip_index or 0)
                        else workload.V1)
        else:
            # One node died but the quorum survived: V2 must have
            # been acknowledged and must be what recovery yields.
            expected = workload.V2
        restored = workload.read_state(recovery.result.root, run.addr)
        restored_page = workload.read_page(recovery.result.root,
                                           run.addr, 7)
        expected_page = expected + b":7"
        return ClusterOutcome(index, schedule.repl_log[index], mode,
                              recovery.durable, restored,
                              restored_page, expected, expected_page)

    def sweep(self, indices: List[int], schedule: ClusterSchedule,
              mode: str = "primary") -> List[ClusterOutcome]:
        """Run the given boundaries; returns outcomes (callers assert)."""
        return [self.run_point(index, schedule, mode=mode)
                for index in indices]


# -- the fenced-failover crash-schedule explorer ------------------------------


class FencedClusterWorkload(ClusterWorkload):
    """The partition-failover protocol made crash-enumerable.

    Boot: all six nodes replicate a durable ``V1`` (no plan installed
    — pre-probe), then the heap is dirtied to ``V2``.

    The probed action walks the whole displaced-primary story: the
    primary is symmetrically partitioned from every node, the ``V2``
    checkpoint commits locally and its pump stalls behind the cut
    (``ship`` boundaries of the doomed attempts), the primary's lease
    expires (``lease``), a reachable node is promoted — every voter
    durably promising the bumped epoch (``epoch`` per voter) — the
    partition heals, the displaced primary fences itself on first
    contact, and anti-entropy reconciliation (``reconcile`` per node)
    drains the fenced tail.

    ``V2`` never reaches any replica's media — the cut, then the
    fence, kill it before apply — so the oracle is constant: recovery
    from replica media yields exactly ``V1`` at *every* crash point.
    """

    def boot(self) -> ClusterRun:  # type: ignore[override]
        machine = Machine()
        sls = load_aurora(machine)
        proc = machine.kernel.spawn("app")
        addr = proc.vmspace.mmap(self.NPAGES * PAGE_SIZE, name="heap")
        self._fill(proc, addr, self.V1)
        group = sls.attach(proc, periodic=False)
        v1 = sls.checkpoint(group, name="v1", sync=True).info.ckpt_id
        cluster = SLSCluster(sls, group, nodes=self.NODES,
                             azs=self.AZS,
                             segment_bytes=self.SEGMENT_BYTES)
        durable = cluster.pump()
        assert durable == v1, "V1 did not reach quorum before the probe"
        self._fill(proc, addr, self.V2)
        return ClusterRun(machine, sls, group, proc, addr, cluster, v1)

    def action(self, run: ClusterRun) -> None:
        """The probed sequence: partition, stall, lease expiry,
        quorum epoch bump, heal, self-fence, reconcile."""
        plan = run.machine.fault_plan
        assert plan is not None, "the explorer installs the plan"
        plan.partition([PRIMARY], list(range(self.NODES)))
        run.sls.checkpoint(run.group, name="v2", sync=True)
        run.cluster.pump()  # stalls: every ship dies at the cut
        run.machine.clock.advance(2 * run.cluster.lease_ns)
        run.cluster.pump()  # zero lease grants past expiry: B_LEASE
        run.cluster.failover()  # quorum epoch bump: B_EPOCH per voter
        plan.heal()
        run.cluster.pump()  # first contact reads the newer promise
        assert run.cluster.fenced, "displaced primary must self-fence"
        run.cluster.reconcile()  # B_RECONCILE per node


class FencedScheduleExplorer(ClusterScheduleExplorer):
    """Crashes the primary at every boundary of a partitioned
    failover — lease expiry, each voter's epoch promise, each node's
    reconciliation — and checks the constant oracle: the fenced
    ``V2`` is never recoverable, ``V1`` always is."""

    def __init__(self, workload: Optional[FencedClusterWorkload] = None):
        super().__init__(workload or FencedClusterWorkload())

    def probe(self) -> ClusterSchedule:
        """Discover the boundary schedule; assert it is deterministic
        and crosses the lease/epoch/reconcile boundary kinds."""
        first = self._observe()
        second = self._observe()
        assert first.repl_log == second.repl_log, \
            "fenced-failover boundary schedule is not deterministic"
        schedule = ClusterSchedule(first.repl_log,
                                   self.workload.WRITE_QUORUM)
        kinds = {boundary for _, boundary in schedule.repl_log}
        assert {B_EPOCH, B_LEASE, B_RECONCILE} <= kinds, \
            f"probe missed a fencing boundary kind: {kinds}"
        assert schedule.flip_index is None, \
            "a fenced V2 must never reach a write-quorum apply"
        return schedule

    def run_point(self, index: int, schedule: ClusterSchedule,
                  mode: str = "primary") -> ClusterOutcome:
        assert mode == "primary", \
            "the fenced sweep crashes the primary only"
        workload = self.workload
        run = workload.boot()
        plan = FaultPlan(name=f"fence{index}")
        plan.crash_at_repl(index)
        run.machine.set_fault_plan(plan)
        try:
            workload.action(run)
        except InjectedCrash:
            pass
        assert plan.fired, f"boundary {index}: crash never fired"

        # The primary dies at (or after) the boundary; the cluster
        # settles on replica media, where V2 never landed.
        run.machine.crash()
        recovery = run.cluster.recover()
        expected = workload.V1
        restored = workload.read_state(recovery.result.root, run.addr)
        restored_page = workload.read_page(recovery.result.root,
                                           run.addr, 7)
        return ClusterOutcome(index, schedule.repl_log[index], mode,
                              recovery.durable, restored,
                              restored_page, expected,
                              expected + b":7")


# -- the fleet crash-schedule explorer ---------------------------------------


class FleetTenant:
    """One periodic tenant of the fleet workload."""

    def __init__(self, proc, group, addr: int):
        self.proc = proc
        self.group = group
        self.gid = group.group_id if group is not None else None
        self.addr = addr


class FleetRun:
    """A booted machine with the pre-probe fleet attached."""

    def __init__(self, machine, sls, tenants: List[FleetTenant]):
        self.machine = machine
        self.sls = sls
        self.tenants = tenants


class FleetWorkload:
    """Fleet-scheduler boundaries made crash-enumerable.

    Boot: two periodic tenants attach (their admit boundaries are
    pre-probe — no plan is installed yet) and each is made durable at
    tag 0 by a sync checkpoint.  The probed action then crosses every
    fleet boundary kind at least once: a third tenant arrives
    (``admit``), the loop runs several periods of EDF dispatches
    (``dispatch``), and an inflated demand estimate forces the
    backpressure controller to stretch a period (``widen``).

    The oracle is per tenant: after a crash at any fleet boundary,
    reboot + restore must yield exactly the tenant's newest durable
    checkpoint — never older than any checkpoint whose commit was
    acked before the crash, and never a torn state (every heap page
    carries the same tag; each driver step rewrites the whole heap, so
    any mixed-tag heap would be a non-atomic capture).
    """

    PERIOD_MS = 10
    NPAGES = 6
    STEPS = 8
    STEP_MS = 5

    def boot(self) -> FleetRun:
        from repro.core import events
        events.log().reset()
        machine = Machine()
        sls = load_aurora(machine)
        tenants = [self._spawn(machine, sls, index) for index in range(2)]
        for tenant in tenants:
            sls.checkpoint(tenant.group, name="v1", sync=True)
        return FleetRun(machine, sls, tenants)

    def _spawn(self, machine, sls, index: int) -> FleetTenant:
        from repro.units import MSEC
        proc = machine.kernel.spawn(f"tenant{index}")
        addr = proc.vmspace.mmap(self.NPAGES * PAGE_SIZE, name="heap")
        tenant = FleetTenant(proc, None, addr)
        self.fill(tenant, tag=0)
        tenant.group = sls.attach(proc, name=f"tenant{index}",
                                  period_ns=self.PERIOD_MS * MSEC)
        tenant.gid = tenant.group.group_id
        return tenant

    def fill(self, tenant: FleetTenant, tag: int) -> None:
        """Rewrite every heap page with one tag — the atomicity probe.
        The tag prefix is identical on every page of one fill, so a
        restored heap mixing prefixes is a torn capture."""
        for page in range(self.NPAGES):
            tenant.proc.vmspace.write(
                tenant.addr + page * PAGE_SIZE,
                b"tag:%06d/page:%d" % (tag, page))

    def read_tags(self, proc, tenant: FleetTenant) -> List[bytes]:
        return [proc.vmspace.read(tenant.addr + page * PAGE_SIZE, 10)
                for page in range(self.NPAGES)]

    def action(self, run: FleetRun) -> None:
        """The probed sequence: admit, dispatch for a while, widen."""
        from repro.units import MSEC
        run.tenants.append(self._spawn(run.machine, run.sls, 2))
        # An absurd measured demand makes the periodic backpressure
        # check stretch this tenant until it hits the widen cap.
        run.tenants[0].group.demand_bytes_per_ckpt = 1 << 40
        for step in range(1, self.STEPS + 1):
            for tenant in run.tenants:
                self.fill(tenant, tag=step)
            run.machine.run_for(self.STEP_MS * MSEC)


class FleetOutcome:
    """What one fleet crash-schedule run observed for one tenant."""

    def __init__(self, index: int, boundary: Tuple[int, str], gid: int,
                 restored_ckpt: int, durable_ckpt: int, acked_ckpt: int,
                 tags: List[bytes]):
        self.index = index
        self.boundary = boundary
        self.gid = gid
        self.restored_ckpt = restored_ckpt
        self.durable_ckpt = durable_ckpt
        self.acked_ckpt = acked_ckpt
        self.tags = tags

    @property
    def ok(self) -> bool:
        return (self.restored_ckpt == self.durable_ckpt
                and self.restored_ckpt >= self.acked_ckpt
                and len(set(self.tags)) == 1)

    def __repr__(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        gid, boundary = self.boundary
        return (f"FleetOutcome(#{self.index} {boundary}@g{gid} "
                f"tenant={self.gid} restored={self.restored_ckpt} "
                f"durable={self.durable_ckpt} acked>={self.acked_ckpt}, "
                f"{status})")


class FleetScheduleExplorer:
    """Crashes the machine at every fleet-scheduler boundary and
    checks the per-tenant durability oracle."""

    def __init__(self, workload: Optional[FleetWorkload] = None):
        self.workload = workload or FleetWorkload()

    def _observe(self) -> FaultPlan:
        run = self.workload.boot()
        plan = FaultPlan(name="fleet-probe")
        run.machine.set_fault_plan(plan)
        self.workload.action(run)
        return plan

    def probe(self) -> List[Tuple[int, str]]:
        """Discover the boundary schedule; assert it is deterministic
        and crosses all three boundary kinds."""
        first = self._observe()
        second = self._observe()
        assert first.fleet_log == second.fleet_log, \
            "fleet boundary schedule is not deterministic"
        kinds = {boundary for _, boundary in first.fleet_log}
        assert kinds == {"admit", "dispatch", "widen"}, \
            f"probe missed a fleet boundary kind: {kinds}"
        return first.fleet_log

    def run_point(self, index: int,
                  schedule: List[Tuple[int, str]]) -> List[FleetOutcome]:
        from repro.core import events
        workload = self.workload
        run = workload.boot()
        plan = FaultPlan(name=f"fleet{index}")
        plan.crash_at_fleet(index)
        run.machine.set_fault_plan(plan)
        try:
            workload.action(run)
        except InjectedCrash:
            pass
        assert plan.fired, f"fleet boundary {index}: crash never fired"

        # Commits acked before the power failed: the durability floor.
        acked = {}
        for event in events.log().matching(kind=events.CKPT_COMMIT):
            acked[event.fields["group"]] = max(
                acked.get(event.fields["group"], 0),
                event.fields["ckpt"])

        run.machine.crash()
        run.machine.boot()
        sls = load_aurora(run.machine)
        outcomes = []
        for tenant in run.tenants:
            if tenant.gid not in sls.restorable_groups():
                # The third tenant's crash landed before its first
                # durable checkpoint: nothing to restore, nothing lost.
                assert tenant.gid not in acked
                continue
            durable = sls.store.find_latest_complete(tenant.gid).ckpt_id
            result = sls.restore(tenant.gid, periodic=False)
            tags = workload.read_tags(result.root, tenant)
            outcomes.append(FleetOutcome(
                index, schedule[index], tenant.gid, result.ckpt_id,
                durable, acked.get(tenant.gid, 0), tags))
        return outcomes

    def sweep(self, indices: List[int],
              schedule: List[Tuple[int, str]]) -> List[FleetOutcome]:
        return [outcome for index in indices
                for outcome in self.run_point(index, schedule)]
