"""The TLV record format: round trips, determinism, corruption."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serde
from repro.errors import CorruptRecord


def test_scalar_round_trips():
    for value in (None, True, False, 0, 1, -1, 2 ** 80, -(2 ** 80),
                  b"", b"bytes", "", "text", "uniçode"):
        assert serde.loads(serde.dumps(value)) == value


def test_container_round_trips():
    value = {"a": [1, 2, {"nested": b"x"}], "b": None, "c": [True, -5]}
    assert serde.loads(serde.dumps(value)) == value


def test_tuple_decodes_as_list():
    assert serde.loads(serde.dumps((1, 2))) == [1, 2]


def test_bytearray_decodes_as_bytes():
    assert serde.loads(serde.dumps(bytearray(b"xy"))) == b"xy"


def test_dict_keys_sorted_for_determinism():
    a = serde.dumps({"x": 1, "y": 2})
    b = serde.dumps({"y": 2, "x": 1})
    assert a == b


def test_non_string_dict_key_rejected():
    with pytest.raises(TypeError):
        serde.dumps({1: "x"})


def test_unsupported_type_rejected():
    with pytest.raises(TypeError):
        serde.dumps(3.14)


def test_corrupt_magic():
    data = bytearray(serde.dumps([1]))
    data[0] ^= 0xFF
    with pytest.raises(CorruptRecord):
        serde.loads(bytes(data))


def test_corrupt_body_checksum():
    data = bytearray(serde.dumps({"key": b"payload-bytes"}))
    data[-1] ^= 0x01
    with pytest.raises(CorruptRecord):
        serde.loads(bytes(data))


def test_truncated_record():
    data = serde.dumps([1, 2, 3])
    with pytest.raises(CorruptRecord):
        serde.loads(data[:len(data) - 4])


def test_short_header_rejected():
    with pytest.raises(CorruptRecord):
        serde.loads(b"ATLV")


json_like = st.recursive(
    st.none() | st.booleans() | st.integers() | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


@settings(max_examples=200, deadline=None)
@given(json_like)
def test_round_trip_property(value):
    def normalize(v):
        if isinstance(v, tuple):
            return [normalize(x) for x in v]
        if isinstance(v, list):
            return [normalize(x) for x in v]
        if isinstance(v, dict):
            return {k: normalize(x) for k, x in v.items()}
        return v

    assert serde.loads(serde.dumps(value)) == normalize(value)


@settings(max_examples=100, deadline=None)
@given(json_like, st.integers(min_value=0, max_value=200),
       st.integers(min_value=1, max_value=255))
def test_single_byte_corruption_never_misdecodes(value, pos, flip):
    """Flipping any body byte must raise, never return wrong data."""
    data = bytearray(serde.dumps(value))
    header = len(serde.MAGIC) + 1 + 16
    if len(data) <= header:
        return
    index = header + (pos % (len(data) - header))
    data[index] ^= flip
    try:
        decoded = serde.loads(bytes(data))
    except CorruptRecord:
        return
    # CRC32 has collisions in theory; equality is the only acceptable
    # non-raising outcome.
    assert decoded == serde.loads(serde.dumps(value))
