"""The structured event log and the RPO/stop-time SLO tracker.

The RPO cross-check is the ISSUE acceptance criterion: the lag
max/p99 that ``sls slo`` reports must equal a recomputation from the
run's known commit schedule (capture instants from the stage traces,
commit instants from the event log).
"""

import pytest

from repro import Machine, load_aurora
from repro.core import events, slo, telemetry, tracing
from repro.core.orchestrator import MODE_MEM
from repro.units import MSEC, PAGE_SIZE

PERIOD_NS = 10 * MSEC  # 100 Hz


@pytest.fixture(autouse=True)
def fresh_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _run_checkpoints(count, pages=4):
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=False)
    results = []
    for i in range(count):
        proc.vmspace.fill(addr, pages, seed=i)
        machine.run_for(PERIOD_NS)
        results.append(sls.checkpoint(group, sync=True))
    return machine, sls, group, results


# -- the event log --------------------------------------------------------------------


def test_checkpoint_lifecycle_lands_in_the_event_log():
    machine, sls, group, results = _run_checkpoints(3)
    gid = group.group_id
    log = events.log()
    starts = log.matching(events.CKPT_START, group=gid)
    commits = log.matching(events.CKPT_COMMIT, group=gid)
    assert len(starts) == len(commits) == 3
    assert [e.fields["ckpt"] for e in commits] == \
        [r.info.ckpt_id for r in results]
    # Events are stamped on the sim clock, in order, and attributed to
    # the checkpoint traces that produced them.
    times = [e.time_ns for e in log]
    assert times == sorted(times)
    trace_ids = {t.trace_id for t in
                 tracing.tracer().traces(tracing.CHECKPOINT, group=gid)}
    assert all(e.trace_id in trace_ids for e in starts + commits)
    # Each commit advanced the group's epoch floor.
    advances = log.matching(events.EPOCH_ADVANCE, group=gid)
    assert [e.fields["ckpt"] for e in advances] == \
        [e.fields["ckpt"] for e in commits]
    # Per-kind counters mirror the log.
    registry = telemetry.registry()
    assert registry.value(f"sls.events.{events.CKPT_COMMIT}") == 3


def test_event_emission_is_a_noop_when_disabled():
    telemetry.set_enabled(False)
    assert events.emit(123, events.CKPT_START, group=1) is None
    assert len(events.log()) == 0


def test_event_ring_is_bounded_and_counts_evictions():
    log = events.EventLog(capacity=4)
    for i in range(10):
        log.emit(i, "test.tick", n=i)
    assert len(log) == 4
    assert [e.fields["n"] for e in log] == [6, 7, 8, 9]
    assert telemetry.registry().value(
        "sls.telemetry.events_dropped") == 6


def test_event_ring_emit_at_capacity_boundary_drops_nothing():
    """Filling the ring to exactly its capacity evicts nothing: the
    dropped counter only moves on the (capacity+1)-th emit."""
    log = events.EventLog(capacity=4)
    for i in range(4):
        log.emit(i, "test.tick", n=i)
    assert len(log) == 4
    assert telemetry.registry().value(
        "sls.telemetry.events_dropped") == 0
    log.emit(4, "test.tick", n=4)
    assert len(log) == 4
    assert telemetry.registry().value(
        "sls.telemetry.events_dropped") == 1
    assert [e.fields["n"] for e in log] == [1, 2, 3, 4]


def test_event_ring_iteration_order_survives_wraparound():
    """After any number of wraps, iteration is oldest → newest and
    timestamps stay monotone."""
    log = events.EventLog(capacity=8)
    for i in range(27):
        log.emit(i * 10, "test.tick", n=i)
    seen = list(log)
    assert [e.fields["n"] for e in seen] == list(range(19, 27))
    times = [e.time_ns for e in seen]
    assert times == sorted(times)
    # matching() walks the same wrapped order.
    assert [e.fields["n"] for e in log.matching("test.tick")] == \
        [e.fields["n"] for e in seen]


def test_event_ring_reset_clears_entries_but_not_drop_accounting():
    """reset() empties the ring and restarts retention; the eviction
    counter is history and survives until the registry resets."""
    log = events.EventLog(capacity=4)
    for i in range(6):
        log.emit(i, "test.tick", n=i)
    assert telemetry.registry().value(
        "sls.telemetry.events_dropped") == 2
    log.reset()
    assert len(log) == 0
    assert list(log) == []
    log.emit(100, "test.tick", n=100)
    assert [e.fields["n"] for e in log] == [100]
    # No phantom eviction from the pre-reset fill.
    assert telemetry.registry().value(
        "sls.telemetry.events_dropped") == 2


def test_dropped_counter_accounts_every_eviction_exactly_once():
    log = events.EventLog(capacity=4)
    total = 0
    for round_size in (3, 4, 9):
        for i in range(round_size):
            log.emit(total + i, "test.tick")
        total += round_size
    expected_drops = total - 4
    assert telemetry.registry().value(
        "sls.telemetry.events_dropped") == expected_drops
    assert len(log) == 4


def test_gc_reclaim_is_traced_and_logged():
    machine, sls, group, results = _run_checkpoints(3)
    victim = results[0].info.ckpt_id
    sls.store.delete_checkpoint(victim)
    reclaims = events.log().matching(events.GC_RECLAIM,
                                     group=group.group_id)
    assert len(reclaims) == 1
    assert reclaims[0].fields["ckpt"] == victim
    gc_traces = tracing.tracer().traces(tracing.GC, ckpt=victim)
    assert len(gc_traces) == 1 and gc_traces[0].complete


def test_restore_emits_event_and_complete_trace():
    machine, sls, group, results = _run_checkpoints(2)
    gid = group.group_id
    machine.crash()
    machine.boot()
    sls = load_aurora(machine)
    sls.restore(gid, periodic=False)
    done = events.log().matching(events.RESTORE_DONE, group=gid)
    assert len(done) == 1
    assert done[0].fields["ckpt"] == results[-1].info.ckpt_id
    rtraces = tracing.tracer().traces(tracing.RESTORE, group=gid)
    assert len(rtraces) == 1 and rtraces[0].complete


# -- the SLO tracker ------------------------------------------------------------------


def test_percentile_exact_nearest_rank():
    values = list(range(1, 101))
    assert slo.percentile_exact(values, 50) == 50
    assert slo.percentile_exact(values, 95) == 95
    assert slo.percentile_exact(values, 99) == 99
    assert slo.percentile_exact(values, 100) == 100
    assert slo.percentile_exact([7], 99) == 7
    assert slo.percentile_exact([], 50) == 0


def test_slo_tracker_on_synthetic_commit_schedule():
    tracker = slo.SLOTracker(slo.SLOTargets(rpo_ns=100, stop_ns=10))
    # First commit: no predecessor, lag bounded by its own capture.
    tracker.on_commit(1, 1, capture_ns=1000, commit_ns=1050)
    # Second commit: lag reaches back to the first capture.
    tracker.on_commit(1, 2, capture_ns=1200, commit_ns=1260)
    tracker.on_stop_time(1, 8)
    tracker.on_stop_time(1, 15)
    row, = tracker.report(1)
    assert row["commits"] == 2
    assert row["rpo_lag"]["max"] == 1260 - 1000
    assert row["rpo_lag"]["p50"] == 1050 - 1000
    assert row["e2e"]["max"] == 60
    assert row["rpo_violations"] == 1   # 260 > 100
    assert row["stop_violations"] == 1  # 15 > 10


def test_burn_rate_alert_is_edge_triggered_and_logged():
    """Sustained budget over-consumption raises one ``slo.alert``
    event (per rising edge) once the minimum sample window fills;
    recovery re-arms the edge."""
    tracker = slo.SLOTracker(slo.SLOTargets(rpo_ns=2000))
    tracker.tenant_names[1] = "svc"
    t = 0
    # Commits landing 5000ns apart against a 2000ns RPO budget burn
    # at ~2.6x: the alert fires exactly when the fourth sample
    # (BURN_MIN_SAMPLES) lands, then stays silent while it persists.
    for i in range(6):
        t += 5000
        tracker.on_commit(1, i + 1, capture_ns=t - 300, commit_ns=t)
    alerts = events.log().matching(events.SLO_ALERT, group=1)
    assert len(alerts) == 1
    assert alerts[0].fields["tenant"] == "svc"
    assert alerts[0].fields["budget"] == "rpo"
    assert alerts[0].fields["burn_milli"] >= slo.BURN_ALERT_MILLI
    assert tracker.alerts(1, "rpo") == 1
    row, = tracker.report(1)
    assert row["rpo_burn_milli"] >= slo.BURN_ALERT_MILLI
    assert row["alerts"] == 1
    # Burn back down under the threshold (commits every 1000ns burn
    # at ~0.5x), then spike again: a second rising edge, a second
    # alert.
    for i in range(slo.BURN_WINDOW):
        t += 1000
        tracker.on_commit(1, 100 + i, capture_ns=t - 10, commit_ns=t)
    assert tracker.burn_rate_milli(1, "rpo") < slo.BURN_ALERT_MILLI
    assert len(events.log().matching(events.SLO_ALERT, group=1)) == 1
    for i in range(slo.BURN_WINDOW):
        t += 5000
        tracker.on_commit(1, 200 + i, capture_ns=t - 300, commit_ns=t)
    assert len(events.log().matching(events.SLO_ALERT, group=1)) == 2
    assert tracker.alerts(1, "rpo") == 2


def test_healthy_commit_schedules_never_alert():
    machine, sls, group, results = _run_checkpoints(10)
    assert events.log().matching(events.SLO_ALERT) == []
    row, = sls.slo.report(group.group_id)
    assert row["alerts"] == 0


def test_rpo_lag_cross_checked_against_known_commit_schedule():
    machine, sls, group, results = _run_checkpoints(20)
    gid = group.group_id
    commits = [e.time_ns for e in
               events.log().matching(events.CKPT_COMMIT, group=gid)]
    captures = [r.stages[0].start_ns for r in results]
    assert len(commits) == len(captures) == 20
    lags = [commits[0] - captures[0]]
    lags += [commits[i] - captures[i - 1] for i in range(1, 20)]
    e2es = [commit - capture for commit, capture
            in zip(commits, captures)]
    row, = sls.slo.report(gid)
    assert row["commits"] == 20
    assert row["rpo_lag"]["count"] == 20
    assert row["rpo_lag"]["max"] == max(lags)
    assert row["rpo_lag"]["p99"] == slo.percentile_exact(lags, 99)
    assert row["rpo_lag"]["p50"] == slo.percentile_exact(lags, 50)
    assert row["e2e"]["max"] == max(e2es)
    assert row["stop"]["max"] == max(r.stop_ns for r in results)


def test_budget_violations_are_counted_per_group():
    machine = Machine()
    sls = load_aurora(machine)
    # Impossible budgets: every checkpoint violates both.
    sls.slo.targets = slo.SLOTargets(rpo_ns=0, stop_ns=0)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, periodic=False)
    for i in range(4):
        proc.vmspace.fill(addr, 4, seed=i)
        machine.run_for(PERIOD_NS)
        sls.checkpoint(group, sync=True)
    assert sls.slo.violations(group.group_id, "rpo") == 4
    assert sls.slo.violations(group.group_id, "stop") == 4


def test_mem_checkpoints_track_stop_time_but_not_rpo():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 4, seed=0)
    group = sls.attach(proc, periodic=False)
    sls.checkpoint(group, sync=True, mode=MODE_MEM)
    row, = sls.slo.report(group.group_id)
    assert row["stop"]["count"] == 1
    assert row["commits"] == 0  # nothing became durable


def test_critical_path_summary_aggregates_stage_self_times():
    machine, sls, group, results = _run_checkpoints(5)
    rows = slo.critical_path_summary(group.group_id)
    by_name = {row["name"]: row for row in rows}
    assert by_name["ckpt.serialize"]["count"] == 5
    assert by_name["ckpt.serialize"]["self_ns"] <= \
        by_name["ckpt.serialize"]["total_ns"]
    assert by_name["ckpt.serialize"]["mean_self_ns"] * 5 <= \
        by_name["ckpt.serialize"]["total_ns"]
    # Self-time ordering is what the CLI prints.
    self_times = [row["self_ns"] for row in rows]
    assert self_times == sorted(self_times, reverse=True)
